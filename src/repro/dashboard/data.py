"""Dashboard data sources: one object behind every JSON endpoint.

:class:`DashboardData` assembles the four views' payloads from the
observability layer's existing artifacts:

- the **timeline** view serves the schema-checked Chrome-trace JSON
  (:meth:`~repro.obs.timeline.TimelineModel.chrome_trace`), either
  loaded from a ``repro trace --out`` file or produced by running one
  traced simulation at startup — the same export Perfetto opens, so
  the dashboard and Perfetto stay consistent by construction;
- the **events** view serves the structured event stream (a PR-5 JSONL
  file or the live tracer) with kind filtering and per-thread
  drill-down, cross-checked against :func:`repro.obs.replay_counters`;
- the **manifests** view serves :func:`repro.obs.read_manifests` over
  telemetry directories discovered by
  :func:`repro.obs.manifest.find_telemetry`;
- the **metrics** view serves the registry snapshot (plus histogram
  p50/p90/p99 from :meth:`~repro.obs.registry.Histogram.quantile`) or,
  in ``--attach`` mode, the Prometheus exposition polled from a running
  ``repro serve`` daemon's ``/metrics``.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.events import SimEvent, events_from_jsonl, replay_counters
from repro.obs.manifest import find_telemetry, read_manifests
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    events_metrics,
    sim_metrics,
)
from repro.obs.timeline import TimelineModel, validate_chrome_trace

__all__ = [
    "DashboardData",
    "histogram_quantiles",
    "parse_prometheus",
    "resolve_attach",
]

#: Quantiles the metrics panel's latency tiles show.
QUANTILES: Dict[str, float] = {"p50": 0.5, "p90": 0.9, "p99": 0.99}

#: One Prometheus text-exposition sample line.
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)\s*$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> List[Dict[str, Any]]:
    """Parse Prometheus text exposition into sample dicts.

    Covers the subset :meth:`~repro.obs.registry.MetricsRegistry.
    to_prometheus` (and therefore the serve daemon's ``/metrics``)
    emits: ``name{label="value",...} number`` lines plus ``# HELP`` /
    ``# TYPE`` comments, which are skipped.

    Args:
        text: The exposition body.

    Returns:
        ``[{"name", "labels", "value"}, ...]`` in input order;
        unparseable lines are dropped rather than raised on.
    """
    samples: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            continue
        name, raw_labels, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            continue
        labels = {
            key: val.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\")
            for key, val in _PROM_LABEL.findall(raw_labels or "")
        }
        samples.append({"name": name, "labels": labels, "value": value})
    return samples


def histogram_quantiles(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Return per-series p50/p90/p99 estimates for every histogram.

    Args:
        registry: Registry whose :class:`~repro.obs.registry.Histogram`
            metrics are summarised.

    Returns:
        One entry per labelled series:
        ``{"name", "labels", "count", "sum", "p50", "p90", "p99"}``.
    """
    tiles: List[Dict[str, Any]] = []
    for metric in registry:
        if not isinstance(metric, Histogram):
            continue
        series_keys = {
            tuple(items for items in key if items[0] != "__stat__")
            for key, _value in metric.samples()
        }
        for key in sorted(series_keys):
            labels = dict(key)
            entry: Dict[str, Any] = {
                "name": metric.name,
                "labels": labels,
                "count": metric.count(**labels),
                "sum": metric.sum(**labels),
            }
            for tag, q in QUANTILES.items():
                entry[tag] = metric.quantile(q, **labels)
            tiles.append(entry)
    return tiles


def resolve_attach(target: Union[str, Path]) -> str:
    """Resolve an ``--attach`` target to a serve daemon's base URL.

    Args:
        target: A serve state directory (holding ``endpoint.json``),
            an ``endpoint.json`` path, a ``host:port`` pair, or a full
            ``http://`` URL.

    Returns:
        The daemon's base URL (no trailing slash).

    Raises:
        ValueError: when the target resolves to nothing usable.
    """
    text = str(target)
    if text.startswith("http://") or text.startswith("https://"):
        return text.rstrip("/")
    path = Path(text)
    if path.is_dir():
        path = path / "endpoint.json"
    if path.is_file():
        try:
            data = json.loads(path.read_text())
            return f"http://{data['host']}:{int(data['port'])}"
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"bad endpoint file {path}: {exc}") from exc
    if ":" in text and not text.endswith(":"):
        host, port = text.rsplit(":", 1)
        if port.isdigit():
            return f"http://{host}:{int(port)}"
    raise ValueError(
        f"--attach target {text!r} is neither a serve state dir, an "
        "endpoint.json, host:port, nor a URL"
    )


class DashboardData:
    """The dashboard's data sources, one instance per app.

    Args:
        trace: Chrome-trace JSON object served by the timeline view.
        events: Structured event stream served by the inspector.
        telemetry: Telemetry directories for the manifest browser.
        registry: Metrics registry behind the local metrics panel
            (ignored by :meth:`metrics_payload` in attach mode).
        attach_url: Base URL of a running serve daemon whose
            ``/metrics`` feeds the metrics panel instead.
        meta: Run-identity metadata shown in the page header.
    """

    def __init__(
        self,
        trace: Dict[str, Any],
        events: Sequence[SimEvent] = (),
        telemetry: Sequence[Union[str, Path]] = (),
        registry: Optional[MetricsRegistry] = None,
        attach_url: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace = trace
        self.events = list(events)
        self.telemetry = [Path(d) for d in telemetry]
        self.registry = registry or MetricsRegistry()
        self.attach_url = attach_url
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------

    @classmethod
    def collect(
        cls,
        workload: str = "compress",
        scale: float = 0.25,
        policy: str = "profile",
        value_predictor: str = "stride",
        thread_units: int = 8,
        max_steps: Optional[int] = None,
        trace_path: Optional[str] = None,
        events_path: Optional[str] = None,
        telemetry: Optional[Sequence[str]] = None,
        attach: Optional[str] = None,
    ) -> "DashboardData":
        """Assemble the data sources from CLI-level knobs.

        With ``trace_path`` the Chrome trace (and optionally the JSONL
        event stream) is loaded from disk; otherwise one traced
        simulation of ``workload`` runs at startup and fills the trace,
        events and metrics registry in one pass.  Telemetry directories
        default to :func:`~repro.obs.manifest.find_telemetry` discovery
        under the working directory.

        Returns:
            The assembled :class:`DashboardData`.

        Raises:
            ValueError: on an unreadable trace/events file or a bad
                ``attach`` target.
        """
        attach_url = resolve_attach(attach) if attach else None
        registry: Optional[MetricsRegistry] = None
        events: List[SimEvent] = []
        meta: Dict[str, Any]
        if trace_path is not None:
            try:
                trace = json.loads(Path(trace_path).read_text())
            except (OSError, ValueError) as exc:
                raise ValueError(
                    f"cannot load trace {trace_path}: {exc}"
                ) from exc
            if events_path is not None:
                try:
                    events = events_from_jsonl(
                        Path(events_path).read_text()
                    )
                except (OSError, ValueError, KeyError) as exc:
                    raise ValueError(
                        f"cannot load events {events_path}: {exc}"
                    ) from exc
            meta = dict(trace.get("otherData", {}))
            meta.setdefault("source", trace_path)
            if events:
                registry = events_metrics(events, **_event_labels(meta))
        else:
            from repro.cmt import ProcessorConfig, simulate
            from repro.obs.events import EventTracer
            from repro.spawning import (
                HeuristicConfig,
                ProfilePolicyConfig,
                heuristic_pairs,
                select_profile_pairs,
            )
            from repro.workloads import load_trace

            run = load_trace(workload, scale, max_steps=max_steps)
            if policy == "heuristics":
                pairs = heuristic_pairs(run, HeuristicConfig())
            else:
                pairs = select_profile_pairs(run, ProfilePolicyConfig())
            tracer = EventTracer()
            config = ProcessorConfig(
                num_thread_units=thread_units,
                value_predictor=value_predictor,
                collect_timeline=True,
            )
            stats = simulate(run, pairs, config, tracer=tracer)
            labels = {
                "workload": workload,
                "policy": policy,
                "vp": value_predictor,
            }
            meta = {**labels, "scale": scale, "tus": thread_units}
            model = TimelineModel.from_stats(
                stats, thread_units, events=tracer.events, meta=meta
            )
            trace = model.chrome_trace()
            events = tracer.events
            registry = sim_metrics(stats, **labels)
            events_metrics(events, registry, **labels)
        dirs: Sequence[Union[str, Path]]
        if telemetry:
            dirs = list(telemetry)
        else:
            dirs = find_telemetry(".")
        return cls(
            trace,
            events=events,
            telemetry=dirs,
            registry=registry,
            attach_url=attach_url,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Per-view payloads (the JSON API responses).
    # ------------------------------------------------------------------

    def trace_payload(self) -> Dict[str, Any]:
        """The timeline view's payload.

        Returns:
            The Chrome-trace JSON object itself.
        """
        return self.trace

    def trace_problems(self) -> List[str]:
        """Schema-check the served trace.

        Returns:
            The :func:`~repro.obs.timeline.validate_chrome_trace`
            findings (empty when valid).
        """
        return validate_chrome_trace(self.trace)

    def events_payload(
        self,
        kind: Optional[str] = None,
        thread: Optional[int] = None,
        limit: int = 2000,
    ) -> Dict[str, Any]:
        """The event inspector's payload.

        Args:
            kind: Keep only this event kind (prefix match on the dotted
                taxonomy: ``thread`` matches ``thread.spawn`` ...).
            thread: Keep only this thread's events.
            limit: Cap on returned event objects (counts and replay
                cover the *unfiltered* stream regardless).

        Returns:
            ``{"total", "counts", "replay", "filtered", "events"}``
            where ``replay`` is the
            :func:`~repro.obs.events.replay_counters` cross-check.
        """
        selected = self.events
        if kind:
            selected = [
                e for e in selected
                if e.kind == kind or e.kind.startswith(kind + ".")
            ]
        if thread is not None:
            selected = [e for e in selected if e.thread == thread]
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "total": len(self.events),
            "counts": counts,
            "replay": replay_counters(self.events),
            "filtered": len(selected),
            "events": [e.to_dict() for e in selected[:limit]],
        }

    def manifests_payload(self) -> Dict[str, Any]:
        """The sweep/manifest browser's payload.

        Returns:
            ``{"dirs": [{"dir", "manifests", "files"}, ...]}`` —
            ``manifests`` is :func:`~repro.obs.read_manifests` output
            and ``files`` lists the directory's non-manifest artifacts
            (figure renders, reports) by name and size.
        """
        entries: List[Dict[str, Any]] = []
        for directory in self.telemetry:
            manifests = read_manifests(directory)
            files: List[Dict[str, Any]] = []
            if directory.is_dir():
                for path in sorted(directory.iterdir()):
                    if path.is_file() and not path.name.endswith(
                        ".manifest.json"
                    ):
                        files.append(
                            {"name": path.name,
                             "bytes": path.stat().st_size}
                        )
            entries.append(
                {
                    "dir": str(directory),
                    "manifests": manifests,
                    "files": files,
                }
            )
        return {"dirs": entries}

    def metrics_payload(self) -> Dict[str, Any]:
        """The metrics panel's payload (local snapshot or attach poll).

        Returns:
            Local mode: ``{"source": "local", "snapshot", "quantiles"}``
            with histogram p50/p90/p99 tiles.  Attach mode:
            ``{"source": "attached", "endpoint", "samples"}`` parsed
            from the daemon's ``/metrics`` exposition (an ``"error"``
            key replaces ``samples`` when the daemon is unreachable).
        """
        if self.attach_url is not None:
            url = self.attach_url + "/metrics"
            try:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    text = resp.read().decode("utf-8")
            except (urllib.error.URLError, OSError) as exc:
                return {
                    "source": "attached",
                    "endpoint": self.attach_url,
                    "error": str(exc),
                }
            return {
                "source": "attached",
                "endpoint": self.attach_url,
                "samples": parse_prometheus(text),
            }
        return {
            "source": "local",
            "snapshot": self.registry.snapshot().to_dict(),
            "quantiles": histogram_quantiles(self.registry),
        }

    def bootstrap(self) -> Dict[str, Any]:
        """Assemble the snapshot bundle.

        Returns:
            Every view's payload in one object
            (``meta``/``trace``/``events``/``manifests``/``metrics``).
        """
        return {
            "meta": self.meta,
            "trace": self.trace_payload(),
            "events": self.events_payload(),
            "manifests": self.manifests_payload(),
            "metrics": self.metrics_payload(),
        }


def _event_labels(meta: Dict[str, Any]) -> Dict[str, str]:
    """Registry labels from trace metadata (identity keys only)."""
    return {
        key: str(meta[key])
        for key in ("workload", "policy", "vp")
        if key in meta
    }
