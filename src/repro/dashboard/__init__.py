"""Live dashboard: a stdlib web UI over the observability layer.

``repro dashboard`` serves one self-contained page with four views —
per-TU occupancy timelines, the spawn/squash/reassign event-stream
inspector, the sweep/manifest browser, and a live metrics panel that
either snapshots the in-process registry or polls a running ``repro
serve`` daemon's ``/metrics`` (``--attach``).  ``--snapshot DIR``
renders the same page as a static bundle that needs no server at all.
See ``docs/dashboard.md``.
"""

from repro.dashboard.app import DashboardApp, run_smoke, write_snapshot
from repro.dashboard.data import (
    DashboardData,
    histogram_quantiles,
    parse_prometheus,
    resolve_attach,
)
from repro.dashboard.page import render_page

__all__ = [
    "DashboardApp",
    "DashboardData",
    "histogram_quantiles",
    "parse_prometheus",
    "render_page",
    "resolve_attach",
    "run_smoke",
    "write_snapshot",
]
