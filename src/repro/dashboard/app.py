"""The dashboard HTTP app, the snapshot writer, and the CI smoke.

:class:`DashboardApp` is a stdlib :mod:`http.server` application in
the same shape as the serve daemon's API server: a handler class bound
to the app by closure, JSON endpoints per view, quiet access log,
ephemeral-port friendly.  It is read-only — every route is a GET and
nothing mutates the underlying :class:`~repro.dashboard.data.
DashboardData` — so it is safe to point at live telemetry directories
while sweeps are writing manifests into them.

Routes
------

- ``GET /`` — the single-page UI (:func:`repro.dashboard.page.
  render_page` in live mode);
- ``GET /api/trace`` — the schema-checked Chrome-trace JSON;
- ``GET /api/events?kind=&thread=&limit=`` — the filtered event
  stream plus kind counts and the replay cross-check;
- ``GET /api/manifests`` — manifest browser payload over the
  discovered telemetry directories;
- ``GET /api/metrics`` — local registry snapshot with histogram
  quantiles, or the polled serve-daemon exposition in attach mode;
- ``GET /healthz`` — liveness.

:func:`write_snapshot` renders the same page with every payload
embedded, producing a static bundle that works from ``file://`` with
no server.  :func:`run_smoke` is the in-process end-to-end check the
CI dashboard step runs: ephemeral server, every endpoint hit, trace
schema validated, ``--attach`` exercised against a real serve daemon,
snapshot bundle validated.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.dashboard.data import DashboardData
from repro.dashboard.page import render_page
from repro.obs.timeline import validate_chrome_trace

__all__ = ["DashboardApp", "run_smoke", "write_snapshot"]


class DashboardApp:
    """Read-only HTTP server over one :class:`DashboardData`.

    Args:
        data: The assembled data sources behind every endpoint.
        host: Bind address.
        port: Bind port (0 = ephemeral; read :attr:`address` after
            :meth:`start`).
    """

    def __init__(
        self,
        data: DashboardData,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.data = data
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Return the bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("dashboard not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Bind the server and serve from a background thread."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="dashboard-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    # ------------------------------------------------------------------
    # Response bodies (shared by the HTTP handler and tests).
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Return the ``/healthz`` payload."""
        return {
            "ok": True,
            "views": ["timeline", "events", "manifests", "metrics"],
            "events": len(self.data.events),
            "telemetry_dirs": len(self.data.telemetry),
            "attached": self.data.attach_url is not None,
        }


def _make_handler(app: DashboardApp) -> type:
    """Build the request-handler class bound to ``app``."""

    class Handler(BaseHTTPRequestHandler):
        """Routes the dashboard API onto the app (one per request)."""

        server_version = "repro-dashboard/1.0"
        protocol_version = "HTTP/1.1"

        # Silence the default stderr access log.
        def log_message(self, format: str, *args: Any) -> None:
            del format, args

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_html(self, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _query(self) -> Dict[str, str]:
            if "?" not in self.path:
                return {}
            query: Dict[str, str] = {}
            for item in self.path.split("?", 1)[1].split("&"):
                if "=" in item:
                    key, value = item.split("=", 1)
                    query[key] = urllib.parse.unquote_plus(value)
            return query

        def do_GET(self) -> None:
            path = self.path.split("?", 1)[0]
            if path in ("/", "/index.html"):
                self._send_html(render_page(None))
            elif path == "/healthz":
                self._send_json(200, app.health())
            elif path == "/api/trace":
                self._send_json(200, app.data.trace_payload())
            elif path == "/api/events":
                query = self._query()
                thread: Optional[int] = None
                limit = 2000
                try:
                    if query.get("thread"):
                        thread = int(query["thread"])
                    if query.get("limit"):
                        limit = int(query["limit"])
                except ValueError:
                    self._send_json(
                        400, {"error": "thread/limit must be integers"}
                    )
                    return
                self._send_json(200, app.data.events_payload(
                    kind=query.get("kind") or None,
                    thread=thread,
                    limit=limit,
                ))
            elif path == "/api/manifests":
                self._send_json(200, app.data.manifests_payload())
            elif path == "/api/metrics":
                self._send_json(200, app.data.metrics_payload())
            else:
                self._send_json(404, {"error": "unknown route"})

    return Handler


def write_snapshot(
    data: DashboardData, directory: Union[str, Path]
) -> List[Path]:
    """Write the static dashboard bundle under ``directory``.

    The bundle is ``index.html`` with every view's payload embedded
    (works from ``file://`` with no server) plus each payload as a
    standalone JSON file (``trace.json``, ``events.json``,
    ``manifests.json``, ``metrics.json``) so other tooling — Perfetto
    for the trace, ``jq`` for the rest — can consume them directly.

    Args:
        data: The assembled data sources.
        directory: Bundle directory (created on demand).

    Returns:
        The written paths, ``index.html`` first.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bootstrap = data.bootstrap()
    written: List[Path] = []
    index = directory / "index.html"
    index.write_text(render_page(bootstrap))
    written.append(index)
    for name in ("trace", "events", "manifests", "metrics"):
        path = directory / f"{name}.json"
        path.write_text(
            json.dumps(bootstrap[name], indent=2, sort_keys=True) + "\n"
        )
        written.append(path)
    return written


def _get(url: str, timeout: float = 10.0) -> Tuple[int, Any]:
    """GET ``url``; return ``(status, parsed-or-text body)``."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            status = resp.status
            body = resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        status = exc.code
        body = exc.read().decode("utf-8")
    try:
        return status, json.loads(body)
    except ValueError:
        return status, body


def run_smoke(
    workload: str = "compress",
    scale: float = 0.05,
    max_steps: Optional[int] = 20000,
) -> Dict[str, Any]:
    """Run the end-to-end dashboard smoke (the CI dashboard step).

    One traced simulation feeds a live server on an ephemeral port;
    every endpoint is hit over real HTTP, the served trace is checked
    with :func:`~repro.obs.timeline.validate_chrome_trace`, the
    ``--attach`` path is exercised against a real ``repro serve``
    daemon's ``/metrics``, and a ``--snapshot`` bundle is written and
    re-validated.  Everything runs in-process against temp dirs.

    Args:
        workload: Workload the backing simulation runs.
        scale: Workload scale (kept tiny — this is a smoke).
        max_steps: Simulation step bound.

    Returns:
        ``{"ok": bool, "checks": [{"name", "ok", "detail"}, ...]}``.
    """
    checks: List[Dict[str, Any]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})

    with tempfile.TemporaryDirectory(prefix="repro-dash-") as tmp:
        telemetry = Path(tmp) / "tele"
        from repro.obs.manifest import RunManifest

        RunManifest(
            name="smoke/point", config={"workload": workload}
        ).write(telemetry)
        data = DashboardData.collect(
            workload=workload,
            scale=scale,
            max_steps=max_steps,
            telemetry=[str(telemetry)],
        )
        app = DashboardApp(data, port=0)
        app.start()
        try:
            status, page = _get(app.url + "/")
            check("index", status == 200 and "repro dashboard" in page,
                  f"HTTP {status}")
            status, health = _get(app.url + "/healthz")
            check("healthz", status == 200 and health.get("ok") is True,
                  f"HTTP {status}")
            status, trace = _get(app.url + "/api/trace")
            problems = (
                validate_chrome_trace(trace)
                if isinstance(trace, dict) else ["not a JSON object"]
            )
            check("trace", status == 200 and not problems,
                  "; ".join(problems) or f"HTTP {status}")
            status, events = _get(app.url + "/api/events?kind=thread")
            ok = (
                status == 200
                and events.get("filtered", 0) > 0
                and all(
                    e["kind"].startswith("thread")
                    for e in events["events"]
                )
            )
            check("events", ok, f"HTTP {status}, "
                  f"{events.get('filtered')} filtered")
            status, bad = _get(app.url + "/api/events?thread=x")
            check("events-bad-query", status == 400, f"HTTP {status}")
            status, manifests = _get(app.url + "/api/manifests")
            ok = status == 200 and any(
                "smoke_point.manifest" in entry["manifests"]
                for entry in manifests.get("dirs", [])
            )
            check("manifests", ok, f"HTTP {status}")
            status, metrics = _get(app.url + "/api/metrics")
            check(
                "metrics-local",
                status == 200 and metrics.get("source") == "local"
                and len(metrics.get("quantiles", [])) > 0,
                f"HTTP {status}",
            )
            status, payload = _get(app.url + "/api/nope")
            check("unknown-route-404", status == 404, f"HTTP {status}")
            del bad, payload
        finally:
            app.stop()

        # --attach leg: a real serve daemon's /metrics feeds the panel.
        from repro.serve.server import ServeConfig, ServeDaemon

        daemon = ServeDaemon(ServeConfig(
            state_dir=os.path.join(tmp, "serve"),
            fsync=False,
            workers=1,
            mode="thread",
        ))
        daemon.start()
        try:
            attached = DashboardData(
                data.trace,
                events=data.events,
                attach_url=f"http://{daemon.address[0]}:"
                           f"{daemon.address[1]}",
                meta=data.meta,
            )
            attach_app = DashboardApp(attached, port=0)
            attach_app.start()
            try:
                status, metrics = _get(attach_app.url + "/api/metrics")
                ok = (
                    status == 200
                    and metrics.get("source") == "attached"
                    and len(metrics.get("samples", [])) > 0
                )
                check(
                    "metrics-attached", ok,
                    f"HTTP {status}, "
                    f"{len(metrics.get('samples', []))} samples",
                )
            finally:
                attach_app.stop()
        finally:
            daemon.stop()

        # --snapshot leg: static bundle, embedded trace re-validated.
        snap_dir = Path(tmp) / "snap"
        written = write_snapshot(data, snap_dir)
        index_ok = (
            written[0].name == "index.html"
            and "repro dashboard" in written[0].read_text()
        )
        check("snapshot-index", index_ok, str(written[0]))
        snap_trace = json.loads((snap_dir / "trace.json").read_text())
        problems = validate_chrome_trace(snap_trace)
        check("snapshot-trace-valid", not problems,
              "; ".join(problems))

    return {"ok": all(c["ok"] for c in checks), "checks": checks}
