#!/usr/bin/env python
"""Value-predictor study (mini Figures 9-11).

Sweeps the live-in value predictors — perfect oracle, stride (increment),
FCM context predictor, DMT-style spawn-copy, and no prediction — and shows
speed-ups, live-in hit ratios, and the cost of an 8-cycle thread
initialisation overhead.

Run:  python examples/value_prediction_study.py [scale]
"""

import sys

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.metrics import arithmetic_mean, harmonic_mean
from repro.spawning import ProfilePolicyConfig, select_profile_pairs
from repro.workloads import load_trace, workload_names

PREDICTORS = ("perfect", "stride", "fcm", "last", "none")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    policy = ProfilePolicyConfig(coverage=0.99, max_distance=4096)

    speedups = {vp: [] for vp in PREDICTORS}
    hits = {vp: [] for vp in PREDICTORS}
    overhead = []

    for workload in workload_names():
        trace = load_trace(workload, scale)
        pairs = select_profile_pairs(trace, policy)
        base = single_thread_cycles(trace, ProcessorConfig())
        for vp in PREDICTORS:
            stats = simulate(
                trace, pairs, ProcessorConfig(value_predictor=vp)
            )
            speedups[vp].append(base / stats.cycles)
            hits[vp].append(stats.value_hit_rate)
        fast = simulate(
            trace, pairs, ProcessorConfig(value_predictor="stride")
        )
        slow = simulate(
            trace,
            pairs,
            ProcessorConfig(value_predictor="stride", init_overhead=8),
        )
        overhead.append(fast.cycles / slow.cycles)

    print(f"{'predictor':>10} {'hmean speed-up':>15} {'amean hit ratio':>16}")
    for vp in PREDICTORS:
        hit = arithmetic_mean(hits[vp]) if any(hits[vp]) else 0.0
        print(
            f"{vp:>10} {harmonic_mean(speedups[vp]):>15.2f} "
            f"{hit:>16.2f}"
        )
    print(
        f"\n8-cycle init overhead slow-down (stride, hmean): "
        f"{harmonic_mean(overhead):.2f}  (paper: ~0.88)"
    )
    print(
        "paper shape: the perfect oracle bounds everything; stride is the "
        "best realistic predictor (~70% live-in hit ratio), and the paper "
        "never predicts memory values, which our model inherits."
    )


if __name__ == "__main__":
    main()
