#!/usr/bin/env python
"""Visualise speculative-thread lifetimes as an ASCII Gantt chart.

Runs one workload on the CSMT with timeline collection enabled and draws,
per thread unit, when each committed thread executed (``=``) and how long
it waited for its in-order commit slot (``.``) — the imbalance the paper's
removal policies (Figures 5-7) are designed to attack.  The same view is
available as ``python -m repro timeline <workload>``.

Run:  python examples/thread_timeline.py [workload] [scale] [tus]
"""

import sys

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.gantt import render_gantt
from repro.spawning import ProfilePolicyConfig, select_profile_pairs
from repro.workloads import load_trace, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    tus = int(sys.argv[3]) if len(sys.argv) > 3 else 8
    if workload not in workload_names():
        raise SystemExit(f"pick one of {workload_names()}")

    trace = load_trace(workload, scale)
    pairs = select_profile_pairs(
        trace, ProfilePolicyConfig(coverage=0.99, max_distance=4096)
    )
    stats = simulate(
        trace,
        pairs,
        ProcessorConfig(num_thread_units=tus, collect_timeline=True),
    )
    print(
        f"{workload}: {stats.cycles} cycles, {stats.threads_committed} "
        f"threads on {tus} units\n"
    )
    print(render_gantt(stats, tus))
    print("\nlong '.' tails are what the paper's pair removal targets")


if __name__ == "__main__":
    main()
