#!/usr/bin/env python
"""Quickstart: profile a program, pick spawning pairs, simulate the CSMT.

This walks the full pipeline of the paper on one workload:

1. build + functionally execute a SpecInt95-analogue program (a trace),
2. run the profile-based spawning-pair selection (Section 3.1),
3. simulate the 16-unit Clustered Speculative Multithreaded Processor,
4. compare against the single-threaded baseline and the traditional
   loop/subroutine heuristics.

Run:  python examples/quickstart.py [workload] [scale]
"""

import sys

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.spawning import ProfilePolicyConfig, heuristic_pairs, select_profile_pairs
from repro.workloads import load_trace, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if workload not in workload_names():
        raise SystemExit(f"pick one of {workload_names()}")

    print(f"== {workload} (scale {scale}) ==")
    trace = load_trace(workload, scale)
    print(f"dynamic trace: {len(trace)} instructions, "
          f"{len(trace.program)} static")

    # --- the paper's profile pass ---
    policy = ProfilePolicyConfig(coverage=0.99, max_distance=4096)
    pairs = select_profile_pairs(trace, policy)
    print(f"profile pass: {pairs.candidates_evaluated} candidate pairs, "
          f"{len(pairs)} spawning points selected")
    for pair in pairs.primary_pairs()[:5]:
        print(
            f"  SP pc {pair.sp_pc:4d} -> CQIP pc {pair.cqip_pc:4d}  "
            f"P(reach)={pair.reach_probability:4.2f}  "
            f"E[distance]={pair.expected_distance:6.1f}  ({pair.kind.value})"
        )

    # --- simulate ---
    config = ProcessorConfig()  # 16 TUs, perfect value prediction
    baseline = single_thread_cycles(trace, config)
    profile_stats = simulate(trace, pairs, config)
    heur_stats = simulate(trace, heuristic_pairs(trace), config)

    print(f"\nsingle-threaded baseline : {baseline:8d} cycles")
    print(
        f"profile-based policy     : {profile_stats.cycles:8d} cycles  "
        f"(speed-up {baseline / profile_stats.cycles:.2f}x, "
        f"{profile_stats.avg_active_threads:.1f} active threads, "
        f"{profile_stats.threads_committed} threads)"
    )
    print(
        f"traditional heuristics   : {heur_stats.cycles:8d} cycles  "
        f"(speed-up {baseline / heur_stats.cycles:.2f}x)"
    )
    print(
        f"profile over heuristics  : "
        f"{heur_stats.cycles / profile_stats.cycles:.2f}x"
    )


if __name__ == "__main__":
    main()
