#!/usr/bin/env python
"""Author a custom program, inspect its profile, and watch the SVC work.

Demonstrates the substrate layers of the library:

- :class:`ProgramBuilder` for writing programs against the RISC-like ISA,
- the dynamic CFG / reaching-probability profile of a trace,
- the Speculative Versioning Memory with an explicit violation,
- a full CSMT simulation of the custom program.

Run:  python examples/custom_workload.py
"""

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.exec import run_program
from repro.isa import Opcode, ProgramBuilder
from repro.mem import SpeculativeVersioningMemory
from repro.profiling import ControlFlowGraph, prune_cfg
from repro.profiling.reaching import EmpiricalReachingProfile
from repro.spawning import ProfilePolicyConfig, select_profile_pairs


def build_histogram_kernel():
    """A small image-histogram kernel: a regular loop with a data-
    dependent inner conditional — a good spawning-pair target."""
    b = ProgramBuilder("histogram")
    from repro.workloads.generators import pseudo_random_words

    pixels = b.alloc_data(pseudo_random_words(7, 600, 0, 256))
    bins = b.alloc(16)
    i, v, addr, t = b.reg("i"), b.reg("v"), b.reg("addr"), b.reg("t")
    with b.for_range(i, 0, 600):
        b.li(addr, pixels)
        b.add(addr, addr, i)
        b.load(v, addr)
        b.shri(v, v, 4)  # 16 bins
        b.li(addr, bins)
        b.add(addr, addr, v)
        b.load(t, addr)
        b.addi(t, t, 1)
        b.store(t, addr)
        with b.if_(Opcode.BEQZ, (v,)):  # dark pixels get extra work
            b.mul(t, t, t)
            b.andi(t, t, 1023)
            b.store(t, addr)
    b.halt()
    return b.build()


def main() -> None:
    program = build_histogram_kernel()
    trace = run_program(program)
    print(f"custom kernel: {len(program)} static / {len(trace)} dynamic instructions")

    # --- profile structure ---
    cfg = ControlFlowGraph.from_trace(trace)
    pruned = prune_cfg(cfg, coverage=0.99)
    profile = EmpiricalReachingProfile(cfg)
    print(f"dynamic CFG: {len(cfg)} blocks, {len(cfg.edges)} edges, "
          f"{len(pruned.kept)} kept at 99% coverage")
    head = cfg.block_of_pc(min(program.loop_heads()))
    print(
        f"loop head block {head}: "
        f"P(reach itself)={profile.prob[head, head]:.3f}, "
        f"E[iteration length]={profile.dist[head, head]:.1f} instructions"
    )

    # --- spawning pairs + simulation ---
    pairs = select_profile_pairs(
        trace, ProfilePolicyConfig(coverage=0.99, max_distance=4096)
    )
    config = ProcessorConfig(num_thread_units=8)
    base = single_thread_cycles(trace, config)
    stats = simulate(trace, pairs, config)
    print(
        f"CSMT (8 units): {stats.cycles} cycles vs {base} single-threaded "
        f"-> speed-up {base / stats.cycles:.2f}x with "
        f"{stats.threads_committed} threads"
    )

    # --- the versioning memory, by hand ---
    print("\nSpeculative Versioning Memory demo:")
    svc = SpeculativeVersioningMemory(backing={100: 1})
    svc.begin_thread(0)
    svc.begin_thread(1)
    print(f"  thread 1 loads addr 100 -> {svc.load(1, 100)} (from memory)")
    violated = svc.store(0, 100, 42)
    print(f"  thread 0 stores 42 late -> violated readers: {violated}")
    svc.squash(1)
    svc.commit(0)
    print(f"  after squash+commit, architectural value: "
          f"{svc.architectural_value(100)}")


if __name__ == "__main__":
    main()
