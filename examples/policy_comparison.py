#!/usr/bin/env python
"""Compare every spawning policy across the whole suite (mini Figure 8).

Sweeps the profile-based policy (all three CQIP-ordering criteria) and the
combined traditional heuristics over the eight SpecInt95 analogues, under
perfect value prediction, and prints speed-ups over single-thread.

Run:  python examples/policy_comparison.py [scale]
"""

import sys

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.metrics import harmonic_mean
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import load_trace, workload_names

POLICIES = {
    "profile(distance)": lambda t: select_profile_pairs(
        t, ProfilePolicyConfig(coverage=0.99, max_distance=4096)
    ),
    "profile(indep)": lambda t: select_profile_pairs(
        t,
        ProfilePolicyConfig(
            coverage=0.99, max_distance=4096, ordering="independent"
        ),
    ),
    "profile(pred)": lambda t: select_profile_pairs(
        t,
        ProfilePolicyConfig(
            coverage=0.99, max_distance=4096, ordering="predictable"
        ),
    ),
    "heuristics": lambda t: heuristic_pairs(t, HeuristicConfig()),
}


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    config = ProcessorConfig()

    header = f"{'benchmark':>10} " + " ".join(
        f"{name:>18}" for name in POLICIES
    )
    print(header)
    print("-" * len(header))

    per_policy = {name: [] for name in POLICIES}
    for workload in workload_names():
        trace = load_trace(workload, scale)
        baseline = single_thread_cycles(trace, config)
        row = [f"{workload:>10}"]
        for name, build in POLICIES.items():
            stats = simulate(trace, build(trace), config)
            speedup = baseline / stats.cycles
            per_policy[name].append(speedup)
            row.append(f"{speedup:>18.2f}")
        print(" ".join(row))

    print("-" * len(header))
    row = [f"{'hmean':>10}"]
    for name in POLICIES:
        row.append(f"{harmonic_mean(per_policy[name]):>18.2f}")
    print(" ".join(row))
    print(
        "\npaper shape: the distance-ordered profile policy leads; the "
        "independence/predictability orderings trail it (Figure 10b), and "
        "the combined heuristics trail on irregular codes (Figure 8)."
    )


if __name__ == "__main__":
    main()
