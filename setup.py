"""Setup shim: all metadata lives in pyproject.toml.

Kept so that editable installs work with older setuptools/pip stacks that
lack PEP 660 wheel support (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
