"""Provenance-manifest tests: digests, round-trips, and the telemetry
directories the engine and the fault campaign write."""

import json

import pytest

from repro.experiments import framework
from repro.experiments.engine import ParallelEngine, Point
from repro.experiments.framework import ResilientOutcome, run_resilient
from repro.faults.campaign import CampaignSpec, run_campaign, workload_seed
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_digest,
    find_telemetry,
    read_manifests,
    write_sweep_manifest,
)

SCALE = 0.12


def _mini_points(workloads=("compress", "li")):
    return [
        Point(
            key=f"mini|{name}",
            runner="simulate",
            params={
                "name": name,
                "policy": "profile",
                "scale": SCALE,
                "overrides": {},
            },
        )
        for name in workloads
    ]


@pytest.fixture(autouse=True)
def _fresh_memos():
    framework.clear_memos()
    yield
    framework.clear_memos()


class TestConfigDigest:
    def test_stable_and_order_independent(self):
        a = config_digest({"workload": "gcc", "scale": 0.3, "tus": 8})
        b = config_digest({"tus": 8, "scale": 0.3, "workload": "gcc"})
        assert a == b
        assert len(a) == 32 and int(a, 16) >= 0

    def test_distinguishes_configs(self):
        a = config_digest({"workload": "gcc", "scale": 0.3})
        b = config_digest({"workload": "gcc", "scale": 0.4})
        assert a != b


class TestRunManifest:
    def test_digest_filled_automatically(self):
        manifest = RunManifest(name="p", config={"workload": "li"})
        assert manifest.digest == config_digest({"workload": "li"})

    def test_dict_round_trip(self):
        manifest = RunManifest(
            name="fig8/gcc",
            config={"workload": "gcc", "tus": 8},
            seed=2002,
            seconds=1.25,
            attempts=2,
            ok=True,
            cache={"misses": 3},
            fault_plan={"rate": 0.05, "seed": 17},
            extra={"note": "x"},
        )
        data = manifest.to_dict()
        assert data["schema_version"] == MANIFEST_SCHEMA_VERSION
        restored = RunManifest.from_dict(json.loads(json.dumps(data)))
        assert restored == manifest

    def test_write_and_read_back(self, tmp_path):
        manifest = RunManifest(
            name="fig8/gcc tus=8", config={"workload": "gcc"}
        )
        path = manifest.write(tmp_path)
        assert path.name == "fig8_gcc_tus_8.manifest.json"
        loaded = read_manifests(tmp_path)
        assert loaded["fig8_gcc_tus_8.manifest"]["digest"] == manifest.digest

    def test_read_missing_directory_is_empty(self, tmp_path):
        assert read_manifests(tmp_path / "nowhere") == {}

    def test_sweep_manifest(self, tmp_path):
        write_sweep_manifest(
            tmp_path, name="fig8", points=4,
            config={"jobs": 2}, seconds=3.5,
            cache={"memory_hits": 9}, extra={"ok": 4},
        )
        data = read_manifests(tmp_path)["sweep.manifest"]
        assert data["name"] == "fig8"
        assert data["points"] == 4
        assert data["digest"] == config_digest({"jobs": 2})
        assert data["cache"] == {"memory_hits": 9}


class TestFindTelemetry:
    def test_discovers_nested_manifest_dirs(self, tmp_path):
        RunManifest(name="a", config={}).write(tmp_path / "tele")
        RunManifest(name="b", config={}).write(
            tmp_path / "runs" / "fig8"
        )
        (tmp_path / "empty").mkdir()
        found = find_telemetry(tmp_path)
        assert found == [
            tmp_path / "runs" / "fig8", tmp_path / "tele"
        ]

    def test_root_itself_counts(self, tmp_path):
        RunManifest(name="a", config={}).write(tmp_path)
        assert find_telemetry(tmp_path) == [tmp_path]

    def test_respects_max_depth(self, tmp_path):
        deep = tmp_path / "a" / "b" / "c"
        RunManifest(name="x", config={}).write(deep)
        assert find_telemetry(tmp_path, max_depth=2) == []
        assert find_telemetry(tmp_path, max_depth=3) == [deep]

    def test_skips_hidden_and_pycache(self, tmp_path):
        RunManifest(name="x", config={}).write(tmp_path / ".git")
        RunManifest(name="y", config={}).write(
            tmp_path / "__pycache__"
        )
        assert find_telemetry(tmp_path) == []

    def test_missing_root_is_empty(self, tmp_path):
        assert find_telemetry(tmp_path / "nope") == []


class TestOutcomeSeconds:
    def test_run_resilient_times_the_attempt(self):
        outcome = run_resilient(lambda: 42, retries=0)
        assert outcome.ok and outcome.value == 42
        assert outcome.seconds > 0

    def test_from_dict_back_compat_default(self):
        # Checkpoints written before the field existed have no
        # "seconds" key; loading them must not crash.
        data = ResilientOutcome(ok=True, value=1, attempts=1).to_dict()
        del data["seconds"]
        assert ResilientOutcome.from_dict(data).seconds == 0.0

    def test_dict_round_trip_keeps_seconds(self):
        outcome = ResilientOutcome(ok=True, value=1, attempts=1, seconds=0.5)
        assert ResilientOutcome.from_dict(outcome.to_dict()) == outcome


class TestEngineTelemetry:
    def test_serial_sweep_writes_manifests(self, tmp_path):
        points = _mini_points()
        engine = ParallelEngine(
            jobs=1, cache_dir=tmp_path / "cache",
            telemetry_dir=tmp_path / "tele",
        )
        results = engine.run(points)
        assert all(results[p.key].ok for p in points)

        manifests = read_manifests(tmp_path / "tele")
        assert set(manifests) == {
            "mini_compress.manifest", "mini_li.manifest", "sweep.manifest",
        }
        point = manifests["mini_compress.manifest"]
        assert point["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert point["ok"] is True
        assert point["seconds"] > 0
        assert point["config"]["runner"] == "simulate"
        assert point["config"]["name"] == "compress"
        assert point["digest"]
        # cold cache: the point's delta shows misses and puts
        assert point["cache"]["misses"] > 0
        sweep = manifests["sweep.manifest"]
        assert sweep["name"] == "sweep"
        assert sweep["points"] == 2
        assert sweep["extra"] == {"ok": 2, "failed": 0}
        assert sweep["seconds"] > 0

    def test_parallel_sweep_writes_manifests(self, tmp_path):
        points = _mini_points()
        engine = ParallelEngine(
            jobs=2, cache_dir=tmp_path / "cache",
            telemetry_dir=tmp_path / "tele",
        )
        engine.run(points)
        manifests = read_manifests(tmp_path / "tele")
        assert len(manifests) == 3  # two points + the sweep rollup
        for stem, data in manifests.items():
            if stem != "sweep.manifest":
                assert data["ok"] is True and data["seconds"] > 0

    def test_no_telemetry_dir_writes_nothing(self, tmp_path):
        engine = ParallelEngine(jobs=1, cache_dir=tmp_path / "cache")
        engine.run(_mini_points(workloads=("compress",)))
        assert not (tmp_path / "tele").exists()


class TestCampaignTelemetry:
    def test_manifests_carry_derived_fault_seeds(self, tmp_path):
        spec = CampaignSpec(
            workloads=("compress",), rates=(0.0, 0.05),
            seed=2002, scale=0.15, retries=0, backoff=0.0,
        )
        result = run_campaign(spec, telemetry_dir=str(tmp_path))
        assert result.ok, result.failures()

        manifests = read_manifests(tmp_path)
        # the "@" in the run key is flattened to "_" in the filename
        faulty = manifests["compress_0.05.manifest"]
        assert faulty["fault_plan"] == {
            "rate": 0.05,
            "seed": workload_seed(2002, "compress"),
        }
        assert faulty["seed"] == 2002
        assert faulty["config"]["workload"] == "compress"
        sweep = manifests["sweep.manifest"]
        assert sweep["name"] == "campaign"
        assert sweep["points"] == 2
        assert sweep["extra"]["failures"] == []
