"""Work-stealing scheduler tests: seeding, stealing, leases, exactly-once."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.scheduler import CostModel, WorkStealingScheduler


@dataclass(frozen=True)
class Task:
    key: str


def _tasks(*keys):
    return [Task(key) for key in keys]


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError):
        WorkStealingScheduler(_tasks("a", "a"))


def test_global_deque_is_longest_job_first():
    cost = CostModel(priors={"small": 1.0, "big": 10.0, "mid": 5.0})
    sched = WorkStealingScheduler(
        _tasks("small", "mid", "big"), cost=cost
    )
    grants = [sched.next_task("w0").key for _ in range(3)]
    assert grants == ["big", "mid", "small"]


def test_unknown_costs_keep_submission_order():
    sched = WorkStealingScheduler(_tasks("c", "a", "b"))
    grants = [sched.next_task("w0").key for _ in range(3)]
    assert grants == ["c", "a", "b"]


def test_upfront_workers_get_lpt_balanced_deques():
    # LPT greedy: 10 -> w0, 9 -> w1, 5 -> w1 (load 9 < 10... no: 9+5=14),
    # actually 5 goes to the least-loaded worker at that moment.
    cost = CostModel(priors={"a": 10.0, "b": 9.0, "c": 5.0, "d": 4.0})
    sched = WorkStealingScheduler(
        _tasks("a", "b", "c", "d"), workers=("w0", "w1"), cost=cost
    )
    # w0 gets a(10) then d(4); w1 gets b(9) then c(5).
    assert sched.next_task("w0").key == "a"
    assert sched.next_task("w1").key == "b"
    assert sched.next_task("w1").key == "c"
    assert sched.next_task("w0").key == "d"


def test_idle_worker_steals_from_busiest_victim_back():
    cost = CostModel(priors={"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0})
    sched = WorkStealingScheduler(
        _tasks("a", "b", "c", "d"), workers=("w0", "w1"), cost=cost
    )
    # Seeding: w0 = [a, d], w1 = [b, c].  Drain w0, then it must steal
    # from the BACK of w1's deque (the cheapest of the victim's work).
    assert sched.next_task("w0").key == "a"
    assert sched.next_task("w0").key == "d"
    stolen = sched.next_task("w0")
    assert stolen.key == "c"
    assert sched.steals["w0"] == 1
    assert sched.next_task("w1").key == "b"


def test_complete_is_exactly_once():
    sched = WorkStealingScheduler(_tasks("a"))
    sched.next_task("w0")
    assert sched.complete("w0", "a") is True
    assert sched.complete("w0", "a") is False
    assert sched.duplicate_finishes == 1
    assert sched.complete("w0", "unknown-key") is False
    assert sched.done()


def test_requeue_worker_preserves_front_order():
    sched = WorkStealingScheduler(_tasks("a", "b", "c", "d"))
    assert sched.next_task("w0").key == "a"
    assert sched.next_task("w0").key == "b"
    lost = sched.requeue_worker("w0")
    assert lost == ["a", "b"]
    assert sched.requeues == 2
    # Requeued leases come back at the FRONT, oldest first.
    assert sched.next_task("w1").key == "a"
    assert sched.next_task("w1").key == "b"
    assert sched.next_task("w1").key == "c"


def test_requeue_worker_rescues_its_unleased_queue():
    # A dead worker's still-queued tasks must return to the global
    # deque, not vanish with its per-worker deque.
    sched = WorkStealingScheduler(
        _tasks("a", "b", "c", "d"), workers=("w0", "w1")
    )
    granted = sched.next_task("w0")
    sched.requeue_worker("w0")  # lease "a" plus one queued task
    assert sched.requeues == 1
    survivors = set()
    while True:
        task = sched.next_task("w1")
        if task is None:
            break
        survivors.add(task.key)
        sched.complete("w1", task.key)
    assert granted.key in survivors
    assert survivors == {"a", "b", "c", "d"}
    assert sched.done()


def test_late_duplicate_after_requeue_is_dropped():
    sched = WorkStealingScheduler(_tasks("a"))
    sched.next_task("w0")
    sched.requeue_worker("w0")  # w0 declared dead
    sched.next_task("w1")
    assert sched.complete("w1", "a") is True
    # w0 was not actually dead and reports late: dropped, counted.
    assert sched.complete("w0", "a") is False
    snap = sched.snapshot()
    assert snap["duplicate_finishes"] == 1
    assert snap["lost"] == 0


def test_snapshot_counts():
    sched = WorkStealingScheduler(_tasks("a", "b"))
    sched.next_task("w0")
    sched.complete("w0", "a")
    snap = sched.snapshot()
    assert snap["tasks"] == 2
    assert snap["completed"] == 1
    assert snap["lost"] == 1
    assert snap["dispatched"] == {"w0": 1}


@given(
    n_tasks=st.integers(min_value=1, max_value=24),
    n_workers=st.integers(min_value=1, max_value=5),
    costs=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=24, max_size=24
    ),
    deaths=st.lists(st.integers(min_value=0, max_value=4), max_size=3),
    choices=st.lists(st.integers(min_value=0, max_value=4), max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_property_any_interleaving_completes_exactly_once(
    n_tasks, n_workers, costs, deaths, choices
):
    """However grants, deaths, and duplicates interleave, every task
    completes exactly once and nothing is lost."""
    keys = [f"t{i}" for i in range(n_tasks)]
    cost = CostModel(
        priors={key: costs[i] for i, key in enumerate(keys)}
    )
    workers = [f"w{i}" for i in range(n_workers)]
    sched = WorkStealingScheduler(_tasks(*keys), workers=workers, cost=cost)

    dead = set()
    finished = []
    deaths = list(deaths)
    step = 0
    while not sched.done():
        step += 1
        assert step < 10_000, "scheduler failed to converge"
        wid = workers[
            choices[step % len(choices)] % n_workers if choices else 0
        ]
        if wid in dead:
            # A dead worker may still report a stale result: must be
            # dropped, never double-committed.
            if finished:
                assert sched.complete(wid, finished[-1]) is False
            dead.discard(wid)  # the fleet respawns it
            sched.register(wid)
            continue
        if deaths and deaths[0] == step % 5 and len(dead) < n_workers - 1:
            deaths.pop(0)
            sched.requeue_worker(wid)
            dead.add(wid)
            continue
        task = sched.next_task(wid)
        if task is None:
            # Nothing stealable: some lease is held by a dead worker.
            for stuck in list(dead):
                sched.requeue_worker(stuck)
                dead.discard(stuck)
                sched.register(stuck)
            continue
        if sched.complete(wid, task.key):
            finished.append(task.key)

    assert sorted(finished) == sorted(keys)
    snap = sched.snapshot()
    assert snap["completed"] == n_tasks
    assert snap["lost"] == 0
