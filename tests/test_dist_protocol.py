"""Frame-protocol tests: round-trips, truncation, digests, seq pairing."""

import socket
import struct
import threading

import pytest

from repro.dist.protocol import (
    MAX_FRAME,
    ConnectionClosed,
    FrameChannel,
    ProtocolError,
    blob_digest,
    recv_frame,
    send_frame,
)


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def test_header_round_trip():
    left, right = _pair()
    try:
        send_frame(left, {"kind": "hello", "worker": "w0", "pid": 42})
        header, blob = recv_frame(right)
        assert header == {"kind": "hello", "worker": "w0", "pid": 42}
        assert blob is None
    finally:
        left.close()
        right.close()


def test_blob_round_trip_sets_blob_len():
    left, right = _pair()
    payload = bytes(range(256)) * 17
    try:
        send_frame(left, {"kind": "cache_blob", "hit": True}, payload)
        header, blob = recv_frame(right)
        assert blob == payload
        assert header["blob_len"] == len(payload)
    finally:
        left.close()
        right.close()


def test_multiple_frames_stay_in_sync():
    left, right = _pair()
    try:
        send_frame(left, {"kind": "a"}, b"xy")
        send_frame(left, {"kind": "b"})
        send_frame(left, {"kind": "c"}, b"")
        assert recv_frame(right) == ({"kind": "a", "blob_len": 2}, b"xy")
        assert recv_frame(right) == ({"kind": "b"}, None)
        assert recv_frame(right) == ({"kind": "c", "blob_len": 0}, b"")
    finally:
        left.close()
        right.close()


def test_eof_between_frames_raises_connection_closed():
    left, right = _pair()
    left.close()
    try:
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()


def test_truncated_header_raises_connection_closed():
    left, right = _pair()
    try:
        # A length prefix announcing 100 bytes, then only 3 before EOF.
        left.sendall(struct.pack(">I", 100) + b"abc")
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()


def test_truncated_blob_raises_connection_closed():
    left, right = _pair()
    try:
        header = b'{"blob_len": 10, "kind": "x"}'
        left.sendall(struct.pack(">I", len(header)) + header + b"abc")
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)
    finally:
        right.close()


def test_oversized_length_prefix_rejected():
    left, right = _pair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_non_object_header_rejected():
    left, right = _pair()
    try:
        body = b"[1, 2, 3]"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_blob_digest_is_stable_blake2b():
    assert blob_digest(b"") == blob_digest(b"")
    assert blob_digest(b"x") != blob_digest(b"y")
    assert len(blob_digest(b"payload")) == 32  # blake2b digest_size=16


def test_request_discards_stale_seq_replies():
    left, right = _pair()
    channel = FrameChannel(left)

    def responder():
        server = FrameChannel(right)
        header, _ = server.recv()
        # A stale reply from an interrupted earlier exchange, then the
        # real one: the client must skip the first.
        server.send({"kind": "idle", "seq": header["seq"] - 1})
        server.send({"kind": "task", "seq": header["seq"], "key": "k"})

    thread = threading.Thread(target=responder)
    thread.start()
    try:
        reply, blob = channel.request({"kind": "steal", "worker": "w0"})
        assert reply["kind"] == "task"
        assert reply["key"] == "k"
        assert blob is None
    finally:
        thread.join()
        channel.close()
        right.close()


def test_channel_close_is_idempotent():
    left, right = _pair()
    channel = FrameChannel(left)
    channel.close()
    channel.close()
    right.close()
