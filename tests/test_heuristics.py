"""Traditional-heuristic spawning-pair tests."""

import pytest

from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.spawning import (
    HeuristicConfig,
    PairKind,
    heuristic_pairs,
    loop_continuation_pairs,
    loop_iteration_pairs,
    subroutine_continuation_pairs,
)


@pytest.fixture(scope="module")
def structured_trace():
    """One loop calling one function: all three constructs present."""
    b = ProgramBuilder()
    i, x = b.reg("i"), b.reg("x")
    from repro.isa.builder import ARG_REGS, RV_REG

    b.li(x, 0)
    with b.for_range(i, 0, 20):
        b.mov(ARG_REGS[0], i)
        b.call("work")
        b.add(x, x, RV_REG)
        for _ in range(6):
            b.addi(x, x, 1)
    b.halt()
    with b.function("work"):
        b.addi(RV_REG, ARG_REGS[0], 2)
        for _ in range(8):
            b.nop()
    return run_program(b.build())


class TestIndividualSchemes:
    def test_loop_iteration_pairs_found(self, structured_trace):
        pairs = loop_iteration_pairs(structured_trace, HeuristicConfig())
        assert pairs
        for pair in pairs:
            assert pair.sp_pc == pair.cqip_pc
            assert pair.kind is PairKind.LOOP_ITERATION
            assert pair.reach_probability > 0.5

    def test_loop_continuation_targets_fallthrough(self, structured_trace):
        pairs = loop_continuation_pairs(structured_trace, HeuristicConfig())
        program = structured_trace.program
        for pair in pairs:
            assert pair.kind is PairKind.LOOP_CONTINUATION
            # CQIP follows some backward branch closing a loop headed at SP
            assert any(
                program[bpc].target == pair.sp_pc and bpc + 1 == pair.cqip_pc
                for bpc in program.backward_branch_pcs()
            )

    def test_subroutine_continuation_at_call_sites(self, structured_trace):
        pairs = subroutine_continuation_pairs(structured_trace, HeuristicConfig())
        call_sites = set(structured_trace.program.call_sites())
        assert pairs
        for pair in pairs:
            assert pair.sp_pc in call_sites
            assert pair.cqip_pc == pair.sp_pc + 1
            assert pair.reach_probability == pytest.approx(1.0)


class TestCombined:
    def test_union_deduplicates(self, structured_trace):
        combined = heuristic_pairs(structured_trace)
        keys = [p.key() for p in combined.all_pairs()]
        assert len(keys) == len(set(keys))

    def test_kind_priority_orders_alternatives(self, structured_trace):
        combined = heuristic_pairs(structured_trace)
        for sp_pc in combined.spawning_points():
            alts = combined.alternatives(sp_pc)
            kinds = [p.kind for p in alts]
            if PairKind.LOOP_ITERATION in kinds:
                assert alts[0].kind is PairKind.LOOP_ITERATION

    def test_min_distance_filters_small_constructs(self, structured_trace):
        strict = heuristic_pairs(
            structured_trace, HeuristicConfig(min_distance=10_000)
        )
        assert len(strict.all_pairs()) == 0

    def test_scheme_toggles(self, structured_trace):
        only_calls = heuristic_pairs(
            structured_trace,
            HeuristicConfig(
                include_loop_iterations=False,
                include_loop_continuations=False,
            ),
        )
        assert all(
            p.kind is PairKind.SUBROUTINE_CONTINUATION
            for p in only_calls.all_pairs()
        )
