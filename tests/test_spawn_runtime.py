"""Spawn-runtime pair-management tests (removal / reassign plumbing)."""

from repro.cmt import ProcessorConfig
from repro.cmt.spawn_runtime import SpawnRuntime
from repro.spawning import PairKind, SpawnPair, SpawnPairSet


def _pair(sp, cqip, score=50.0):
    return SpawnPair(sp, cqip, PairKind.PROFILE, 0.99, score, score)


def _runtime(pairs, **config_overrides):
    return SpawnRuntime(
        SpawnPairSet(pairs), ProcessorConfig().with_(**config_overrides)
    )


class TestCandidates:
    def test_best_only_without_reassign(self):
        rt = _runtime([_pair(1, 2, 10), _pair(1, 3, 99)])
        assert [p.cqip_pc for p in rt.candidates(1)] == [3]

    def test_all_alternatives_with_reassign(self):
        rt = _runtime([_pair(1, 2, 10), _pair(1, 3, 99)], reassign=True)
        assert [p.cqip_pc for p in rt.candidates(1)] == [3, 2]

    def test_non_spawning_point(self):
        rt = _runtime([_pair(1, 2)])
        assert not rt.is_spawning_point(7)
        assert rt.candidates(7) == []


class TestAloneRemoval:
    def test_removed_after_threshold(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50)
        assert rt.note_alone_threshold(pair) is True
        assert rt.candidates(1) == []
        assert rt.removed_alone == 1

    def test_delayed_removal_counts_occurrences(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50, removal_occurrences=3)
        assert rt.note_alone_threshold(pair) is False
        assert rt.note_alone_threshold(pair) is False
        assert rt.note_alone_threshold(pair) is True
        assert rt.candidates(1) == []

    def test_disabled_when_no_threshold(self):
        pair = _pair(1, 2)
        rt = _runtime([pair])  # removal_cycles=None
        assert rt.note_alone_threshold(pair) is False
        assert rt.candidates(1)

    def test_root_thread_has_no_pair(self):
        rt = _runtime([_pair(1, 2)], removal_cycles=50)
        assert rt.note_alone_threshold(None) is False

    def test_removal_unmasks_alternative_under_reassign(self):
        best, alt = _pair(1, 3, 99), _pair(1, 2, 10)
        rt = _runtime([best, alt], removal_cycles=50, reassign=True)
        rt.note_alone_threshold(best)
        assert [p.cqip_pc for p in rt.candidates(1)] == [2]


class TestRevival:
    """The paper's footnote policy: removed pairs return after a period."""

    def test_pair_revived_after_period(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50, removal_revival_cycles=100)
        rt.note_alone_threshold(pair, cycle=10)
        assert rt.candidates(1, cycle=50) == []  # still removed
        assert [p.cqip_pc for p in rt.candidates(1, cycle=120)] == [2]
        assert rt.revived == 1

    def test_revived_pair_can_be_removed_again(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50, removal_revival_cycles=100)
        rt.note_alone_threshold(pair, cycle=0)
        rt.candidates(1, cycle=200)  # revival
        assert rt.note_alone_threshold(pair, cycle=210) is True
        assert rt.candidates(1, cycle=250) == []

    def test_no_revival_by_default(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50)
        rt.note_alone_threshold(pair, cycle=0)
        assert rt.candidates(1, cycle=10**9) == []


class TestCoactiveThreshold:
    """The paper's 'executing with just a few threads' removal variant."""

    def test_processor_accepts_coactive_threshold(self, ):
        from repro.cmt import ProcessorConfig, simulate
        from repro.exec import run_program
        from repro.isa import ProgramBuilder

        b = ProgramBuilder()
        i, acc = b.reg("i"), b.reg("acc")
        with b.for_range(i, 0, 40):
            for _ in range(10):
                b.addi(acc, acc, 1)
        b.halt()
        trace = run_program(b.build())
        head = min(trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head, head, 12.0)])
        gentle = simulate(
            trace,
            pairs,
            ProcessorConfig(removal_cycles=30, removal_coactive_threshold=1),
        )
        aggressive = simulate(
            trace,
            pairs,
            ProcessorConfig(removal_cycles=30, removal_coactive_threshold=8),
        )
        # a larger threshold can only remove at least as eagerly
        assert aggressive.pairs_removed_alone >= gentle.pairs_removed_alone


class TestRevivalBoundary:
    """Exact semantics of the revival window edge."""

    def test_revival_exactly_at_threshold(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], removal_cycles=50, removal_revival_cycles=100)
        rt.note_alone_threshold(pair, cycle=10)
        # one cycle short of the revival period: still removed
        assert rt.candidates(1, cycle=109) == []
        assert rt.revived == 0
        # exactly removal_revival_cycles later: revived
        assert [p.cqip_pc for p in rt.candidates(1, cycle=110)] == [2]
        assert rt.revived == 1

    def test_occurrence_counter_resets_on_revival(self):
        pair = _pair(1, 2)
        rt = _runtime(
            [pair],
            removal_cycles=50,
            removal_occurrences=2,
            removal_revival_cycles=100,
        )
        assert rt.note_alone_threshold(pair, cycle=0) is False
        assert rt.note_alone_threshold(pair, cycle=5) is True  # 2nd strike
        rt.candidates(1, cycle=200)  # revival clears the strike count
        # the revived pair gets a fresh occurrence budget
        assert rt.note_alone_threshold(pair, cycle=210) is False
        assert rt.note_alone_threshold(pair, cycle=220) is True

    def test_delayed_removal_interleaved_pairs(self):
        """Occurrence counts are tracked per pair, not globally."""
        a, b = _pair(1, 2), _pair(5, 6)
        rt = _runtime([a, b], removal_cycles=50, removal_occurrences=2)
        assert rt.note_alone_threshold(a) is False
        assert rt.note_alone_threshold(b) is False
        assert rt.note_alone_threshold(a) is True
        assert rt.candidates(1) == []
        assert rt.candidates(5)  # b has only one strike


class TestProcessorReassignment:
    """End-to-end reassign: walk the CQIP alternatives, fall through all."""

    def _loop_trace(self):
        from repro.exec import run_program
        from repro.isa import ProgramBuilder

        b = ProgramBuilder("reassign")
        i, acc = b.reg("i"), b.reg("acc")
        with b.for_range(i, 0, 16):
            for _ in range(12):
                b.addi(acc, acc, 1)
        b.halt()
        return run_program(b.build())

    def test_fallback_to_second_cqip(self):
        from repro.cmt import ProcessorConfig, simulate

        trace = self._loop_trace()
        head = min(trace.program.loop_heads())
        never_pc = max(inst.pc for inst in trace) + 100  # unreachable CQIP
        pairs = SpawnPairSet([
            _pair(head, never_pc, 99),  # preferred but never occurs
            _pair(head, head, 10),      # viable alternative
        ])
        stats = simulate(trace, pairs, ProcessorConfig(reassign=True))
        assert stats.reassign_fallbacks > 0
        assert stats.spawns > 0
        assert sum(stats.thread_sizes) == len(trace)

    def test_all_alternatives_exhausted_is_a_ghost(self):
        from repro.cmt import ProcessorConfig, simulate

        trace = self._loop_trace()
        head = min(trace.program.loop_heads())
        never = max(inst.pc for inst in trace) + 100
        pairs = SpawnPairSet([
            _pair(head, never, 99),
            _pair(head, never + 1, 10),
        ])
        stats = simulate(trace, pairs, ProcessorConfig(reassign=True))
        # every candidate's CQIP is unreachable: the hardware misspawns
        assert stats.spawns == 0
        assert stats.control_misspeculations > 0
        assert sum(stats.thread_sizes) == len(trace)

    def test_exact_check_rejects_instead_of_ghosting(self):
        from repro.cmt import ProcessorConfig, simulate

        trace = self._loop_trace()
        head = min(trace.program.loop_heads())
        never = max(inst.pc for inst in trace) + 100
        pairs = SpawnPairSet([_pair(head, never, 99)])
        stats = simulate(
            trace, pairs,
            ProcessorConfig(reassign=True, spawn_order_check="exact"),
        )
        assert stats.control_misspeculations == 0
        assert stats.spawns_rejected_order > 0


class TestMinSizeRemoval:
    def test_small_threads_remove_their_pair(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], min_thread_size=32)
        assert rt.note_thread_size(pair, 10) is True
        assert rt.candidates(1) == []
        assert rt.removed_min_size == 1

    def test_large_threads_keep_the_pair(self):
        pair = _pair(1, 2)
        rt = _runtime([pair], min_thread_size=32)
        assert rt.note_thread_size(pair, 64) is False
        assert rt.candidates(1)

    def test_disabled_without_min_size(self):
        pair = _pair(1, 2)
        rt = _runtime([pair])
        assert rt.note_thread_size(pair, 1) is False

    def test_live_pair_count(self):
        rt = _runtime([_pair(1, 2), _pair(5, 6)], min_thread_size=32)
        assert rt.live_pair_count() == 2
        rt.note_thread_size(_pair(1, 2), 1)
        assert rt.live_pair_count() == 1
