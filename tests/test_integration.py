"""End-to-end integration: profile -> select -> simulate -> compare."""

import pytest

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.exec import run_program
from repro.profiling import ControlFlowGraph, prune_cfg
from repro.profiling.reaching import EmpiricalReachingProfile
from repro.spawning import ProfilePolicyConfig, heuristic_pairs, select_profile_pairs
from repro.workloads import build_workload

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


class TestFullPipeline:
    def test_trace_to_speedup(self):
        trace = run_program(build_workload("ijpeg", 0.25))
        pairs = select_profile_pairs(trace, POLICY)
        assert len(pairs) > 0
        base = single_thread_cycles(trace, ProcessorConfig())
        stats = simulate(trace, pairs, ProcessorConfig())
        assert base / stats.cycles > 1.5
        assert stats.instructions == len(trace)

    def test_profile_artifacts_consistent(self):
        trace = run_program(build_workload("vortex", 0.2))
        cfg = ControlFlowGraph.from_trace(trace)
        pruned = prune_cfg(cfg, 0.99)
        profile = EmpiricalReachingProfile(cfg)
        pairs = select_profile_pairs(trace, POLICY)
        by_pc = cfg.by_pc
        for pair in pairs.all_pairs():
            if pair.kind.value != "profile":
                continue
            s = by_pc[pair.sp_pc]
            d = by_pc[pair.cqip_pc]
            assert s in pruned.kept and d in pruned.kept
            assert profile.prob[s, d] == pytest.approx(
                pair.reach_probability
            )

    def test_policies_comparable_on_same_trace(self):
        trace = run_program(build_workload("go", 0.2))
        config = ProcessorConfig()
        profile_stats = simulate(trace, select_profile_pairs(trace, POLICY), config)
        heur_stats = simulate(trace, heuristic_pairs(trace), config)
        # both must complete the same work
        assert profile_stats.instructions == heur_stats.instructions
        # and on go (branchy, irregular) the profile policy should win,
        # which is the paper's headline claim
        assert profile_stats.cycles <= heur_stats.cycles * 1.05

    def test_value_prediction_sandwich(self):
        """perfect <= stride-driven <= no-prediction cycles."""
        trace = run_program(build_workload("m88ksim", 0.25))
        pairs = select_profile_pairs(trace, POLICY)
        cycles = {
            vp: simulate(
                trace, pairs, ProcessorConfig(value_predictor=vp)
            ).cycles
            for vp in ("perfect", "stride", "none")
        }
        assert cycles["perfect"] <= cycles["stride"] * 1.02
        assert cycles["stride"] <= cycles["none"] * 1.10
