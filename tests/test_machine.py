"""Functional-executor semantics, one behaviour per test."""

import pytest

from repro.exec import ExecutionError, Machine, run_program
from repro.exec.machine import _wrap32
from repro.isa import Opcode, ProgramBuilder
from repro.isa.assembler import assemble


def _run_asm(text):
    return run_program(assemble(text))


def _final(trace, reg):
    return trace.value_of_register_at(reg, len(trace))


class TestArithmetic:
    @pytest.mark.parametrize(
        "snippet,expected",
        [
            ("li r1 6\nli r2 7\nadd r3 r1 r2", 13),
            ("li r1 6\nli r2 7\nsub r3 r1 r2", -1),
            ("li r1 6\nli r2 7\nmul r3 r1 r2", 42),
            ("li r1 42\nli r2 5\ndiv r3 r1 r2", 8),
            ("li r1 42\nli r2 5\nrem r3 r1 r2", 2),
            ("li r1 12\nli r2 10\nand r3 r1 r2", 8),
            ("li r1 12\nli r2 10\nor r3 r1 r2", 14),
            ("li r1 12\nli r2 10\nxor r3 r1 r2", 6),
            ("li r1 3\nli r2 2\nshl r3 r1 r2", 12),
            ("li r1 12\nli r2 2\nshr r3 r1 r2", 3),
            ("li r1 3\nli r2 5\nslt r3 r1 r2", 1),
            ("li r1 5\nslti r3 r1 5", 0),
            ("li r1 5\naddi r3 r1 -2", 3),
            ("li r1 0xff\nandi r3 r1 0x0f", 15),
            ("li r1 8\nori r3 r1 3", 11),
            ("li r1 8\nxori r3 r1 9", 1),
            ("li r1 1\nshli r3 r1 4", 16),
            ("li r1 -8\nshri r3 r1 1", (0x100000000 - 8) >> 1),
        ],
    )
    def test_int_op(self, snippet, expected):
        trace = _run_asm(snippet + "\nhalt")
        assert _final(trace, 3) == expected

    def test_division_by_zero_yields_zero(self):
        trace = _run_asm("li r1 9\nli r2 0\ndiv r3 r1 r2\nrem r4 r1 r2\nhalt")
        assert _final(trace, 3) == 0
        assert _final(trace, 4) == 0

    def test_negative_division_truncates_toward_zero(self):
        trace = _run_asm("li r1 -7\nli r2 2\ndiv r3 r1 r2\nhalt")
        assert _final(trace, 3) == -3

    def test_results_wrap_to_32_bits(self):
        trace = _run_asm("li r1 2000000000\nli r2 2000000000\nadd r3 r1 r2\nhalt")
        assert _final(trace, 3) == _wrap32(4_000_000_000)

    def test_wrap32_helper(self):
        assert _wrap32(0x7FFFFFFF) == 0x7FFFFFFF
        assert _wrap32(0x80000000) == -(1 << 31)
        assert _wrap32(-1) == -1


class TestFloatingPoint:
    def test_fp_pipeline(self):
        trace = _run_asm(
            "li r1 3\nfcvt r2 r1\nli r3 4\nfcvt r4 r3\n"
            "fmul r5 r2 r4\nfadd r6 r5 r2\nfsub r7 r6 r4\nfdiv r8 r7 r2\nhalt"
        )
        assert _final(trace, 5) == 12.0
        assert _final(trace, 6) == 15.0
        assert _final(trace, 7) == 11.0
        assert _final(trace, 8) == pytest.approx(11.0 / 3.0)

    def test_fdiv_by_zero_yields_zero(self):
        trace = _run_asm("li r1 5\nfcvt r2 r1\nli r3 0\nfcvt r4 r3\nfdiv r5 r2 r4\nhalt")
        assert _final(trace, 5) == 0.0


class TestMemory:
    def test_store_then_load_roundtrips(self):
        trace = _run_asm("li r1 1000\nli r2 77\nstore r2 r1 4\nload r3 r1 4\nhalt")
        assert _final(trace, 3) == 77

    def test_uninitialised_memory_reads_zero(self):
        trace = _run_asm("li r1 5555\nload r3 r1\nhalt")
        assert _final(trace, 3) == 0

    def test_initial_memory_from_program(self):
        b = ProgramBuilder()
        base = b.alloc_data([41])
        x = b.reg("x")
        b.li(x, base)
        b.load(x, x)
        b.addi(x, x, 1)
        b.halt()
        assert _final(run_program(b.build()), x) == 42

    def test_addresses_recorded_in_trace(self):
        trace = _run_asm("li r1 300\nli r2 9\nstore r2 r1 8\nload r3 r1 8\nhalt")
        addrs = [d.addr for d in trace if d.addr is not None]
        assert addrs == [308, 308]


class TestControl:
    def test_branch_outcomes_recorded(self):
        trace = _run_asm("li r1 1\nbeqz r1 end\nbnez r1 end\nnop\nend: halt")
        branches = [d for d in trace if d.taken is not None]
        assert [d.taken for d in branches] == [False, True]

    def test_register_zero_is_hardwired(self):
        trace = _run_asm("li r0 55\nadd r3 r0 r0\nhalt")
        assert _final(trace, 3) == 0

    def test_ret_without_call_raises(self):
        with pytest.raises(ExecutionError):
            _run_asm("ret\nhalt")

    def test_runaway_program_raises(self):
        with pytest.raises(ExecutionError):
            run_program(assemble("loop: jump loop\nhalt"), max_steps=100)

    def test_runaway_is_a_workload_error_with_context(self):
        from repro.errors import SimulationError, WorkloadError

        with pytest.raises(WorkloadError) as info:
            run_program(assemble("loop: jump loop\nhalt"), max_steps=5)
        # structured: catchable as either family, carries the budget
        assert isinstance(info.value, ExecutionError)
        assert isinstance(info.value, SimulationError)
        assert "max_steps=5" in str(info.value)

    def test_step_after_halt_raises(self):
        machine = Machine(assemble("halt"))
        machine.step()
        with pytest.raises(ExecutionError):
            machine.step()

    def test_nested_calls_return_in_order(self):
        trace = _run_asm(
            "call outer\nhalt\n"
            "outer: li r1 1\ncall inner\naddi r1 r1 4\nret\n"
            "inner: addi r1 r1 2\nret"
        )
        assert _final(trace, 1) == 7


class TestDeterminism:
    def test_same_program_same_trace(self):
        program = assemble("li r1 3\nloop: addi r1 r1 -1\nbnez r1 loop\nhalt")
        t1 = run_program(program)
        t2 = run_program(program)
        assert [d.pc for d in t1] == [d.pc for d in t2]
        assert [d.dst_value for d in t1] == [d.dst_value for d in t2]
