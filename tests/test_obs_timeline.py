"""Timeline-model tests: Chrome trace export, schema validation, and the
ASCII Gantt rendering as two projections of one model."""

import json

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.gantt import render_gantt, render_model
from repro.obs import (
    CHROME_TRACE_SCHEMA_VERSION,
    EventTracer,
    Lifetime,
    TimelineModel,
    validate_chrome_trace,
)
from repro.obs.events import (
    EV_CACHE_INSTALL,
    EV_PREDICT_HIT,
    EV_THREAD_SQUASH,
)
from repro.spawning import ProfilePolicyConfig, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


@pytest.fixture(scope="module")
def timeline_run(small_traces):
    """One timeline-enabled traced run shared by the module's tests."""
    trace = small_traces["compress"]
    pairs = select_profile_pairs(trace, POLICY)
    tracer = EventTracer()
    config = ProcessorConfig(
        num_thread_units=8, value_predictor="stride", collect_timeline=True
    )
    stats = simulate(trace, pairs, config, tracer=tracer)
    return stats, tracer


class TestModel:
    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError, match="collect_timeline=True"):
            TimelineModel([], num_tus=4)

    def test_from_stats_without_timeline_rejected(self, small_traces):
        trace = small_traces["compress"]
        pairs = select_profile_pairs(trace, POLICY)
        stats = simulate(trace, pairs, ProcessorConfig())  # no timeline
        with pytest.raises(ValueError, match="no timeline collected"):
            TimelineModel.from_stats(stats, 16)

    def test_lifetimes_mirror_stats(self, timeline_run):
        stats, _ = timeline_run
        model = TimelineModel.from_stats(stats, 8)
        assert len(model.lifetimes) == len(stats.timeline)
        assert sum(l.size for l in model.lifetimes) == stats.instructions
        assert model.total_cycles == max(l.commit for l in model.lifetimes)

    def test_lanes_cover_every_tu_sorted(self, timeline_run):
        stats, _ = timeline_run
        model = TimelineModel.from_stats(stats, 8)
        lanes = model.lanes()
        assert set(lanes) == set(range(8))
        for lane in lanes.values():
            starts = [l.start for l in lane]
            assert starts == sorted(starts)

    def test_bulk_kinds_excluded_from_markers(self, timeline_run):
        stats, tracer = timeline_run
        model = TimelineModel.from_stats(stats, 8, events=tracer.events)
        kinds = {m.kind for m in model.markers}
        assert EV_PREDICT_HIT not in kinds
        assert EV_CACHE_INSTALL not in kinds

    def test_commit_wait_is_nonnegative(self, timeline_run):
        stats, _ = timeline_run
        model = TimelineModel.from_stats(stats, 8)
        assert all(w >= 0 for w in model.commit_waits())


class TestChromeTrace:
    def test_export_is_schema_valid(self, timeline_run):
        stats, tracer = timeline_run
        model = TimelineModel.from_stats(
            stats, 8, events=tracer.events,
            meta={"workload": "compress", "policy": "profile"},
        )
        chrome = model.chrome_trace()
        assert validate_chrome_trace(chrome) == []
        assert chrome["otherData"]["workload"] == "compress"

    def test_tracks_and_slices(self, timeline_run):
        stats, tracer = timeline_run
        model = TimelineModel.from_stats(stats, 8, events=tracer.events)
        events = model.chrome_trace()["traceEvents"]
        thread_names = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(thread_names) == 8  # one track per TU
        executes = [e for e in events if e.get("cat") == "execute"]
        assert len(executes) == len(model.lifetimes)
        waits = [e for e in events if e.get("cat") == "commit_wait"]
        expected = sum(1 for l in model.lifetimes if l.commit > l.finish)
        assert len(waits) == expected
        squashes = [e for e in events if e["name"] == EV_THREAD_SQUASH]
        assert all(e["ph"] == "i" for e in squashes)

    def test_json_serialisation_round_trips(self, timeline_run):
        stats, _ = timeline_run
        model = TimelineModel.from_stats(stats, 8)
        parsed = json.loads(model.chrome_trace_json())
        assert validate_chrome_trace(parsed) == []


class TestValidator:
    """validate_chrome_trace must actually catch malformed traces."""

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_empty_trace_events(self):
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_unknown_phase(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 0, "name": "x"}]}
        )
        assert any("unknown phase" in p for p in problems)

    def test_complete_event_needs_ts_and_dur(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "x"}]}
        )
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_instant_scope_checked(self):
        problems = validate_chrome_trace(
            {"traceEvents": [
                {"ph": "i", "pid": 1, "tid": 0, "name": "x", "ts": 1,
                 "s": "q"},
            ]}
        )
        assert any("instant scope" in p for p in problems)

    def test_metadata_name_checked(self):
        problems = validate_chrome_trace(
            {"traceEvents": [
                {"ph": "M", "pid": 1, "tid": 0, "name": "favourite_colour"},
            ]}
        )
        assert any("unknown metadata name" in p for p in problems)


class TestSchemaVersion:
    """metadata.schema_version is stamped on export and validated."""

    GOOD = {"ph": "M", "pid": 1, "tid": 0, "name": "process_name"}

    def test_export_stamps_current_version(self, timeline_run):
        stats, _ = timeline_run
        chrome = TimelineModel.from_stats(stats, 8).chrome_trace()
        assert chrome["metadata"]["schema_version"] == (
            CHROME_TRACE_SCHEMA_VERSION
        )

    def test_absent_stamp_is_version_1(self):
        problems = validate_chrome_trace({"traceEvents": [self.GOOD]})
        assert any(
            "assuming 1" in p and "schema_version" in p for p in problems
        )
        # Callers holding pre-stamp exports opt in explicitly.
        assert validate_chrome_trace(
            {"traceEvents": [self.GOOD]}, expected_version=1
        ) == []

    def test_version_mismatch_flagged(self):
        trace = {
            "traceEvents": [self.GOOD],
            "metadata": {"schema_version": 99},
        }
        problems = validate_chrome_trace(trace)
        assert any("99" in p and "!= expected" in p for p in problems)

    def test_matching_stamp_is_clean(self):
        trace = {
            "traceEvents": [self.GOOD],
            "metadata": {
                "schema_version": CHROME_TRACE_SCHEMA_VERSION
            },
        }
        assert validate_chrome_trace(trace) == []

    def test_non_object_metadata_flagged(self):
        trace = {"traceEvents": [self.GOOD], "metadata": "v2"}
        problems = validate_chrome_trace(trace)
        assert "metadata is not an object" in problems


class TestGantt:
    """The ASCII renderer is one projection of the same model."""

    def test_empty_timeline_raises(self, small_traces):
        trace = small_traces["compress"]
        pairs = select_profile_pairs(trace, POLICY)
        stats = simulate(trace, pairs, ProcessorConfig())
        with pytest.raises(ValueError, match="collect_timeline=True"):
            render_gantt(stats, 16)

    def test_narrow_width_rows_stay_aligned(self, timeline_run):
        stats, _ = timeline_run
        art = render_gantt(stats, 8, width=10)
        rows = [line for line in art.splitlines() if line.startswith("TU")]
        assert len(rows) == 8
        assert len({len(row) for row in rows}) == 1
        assert all(row.endswith("|") for row in rows)

    def test_render_gantt_matches_render_model(self, timeline_run):
        stats, _ = timeline_run
        model = TimelineModel.from_stats(stats, 8)
        assert render_gantt(stats, 8, width=60) == render_model(
            model, width=60
        )

    def test_single_lifetime_renders(self):
        model = TimelineModel(
            [Lifetime(tu=0, start=0, finish=40, commit=50, size=40)],
            num_tus=2,
        )
        art = render_model(model, width=20)
        assert "TU00" in art and "TU01" in art
        assert "=" in art and "." in art
        assert "mean commit wait 10.0 cycles, max 10" in art
