"""Speculative versioning memory: SVC reference-semantics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import SpeculativeVersioningMemory, VersioningError


def _svc(*threads, backing=None):
    svc = SpeculativeVersioningMemory(backing=backing)
    for t in threads:
        svc.begin_thread(t)
    return svc


class TestVersioning:
    def test_load_sees_newest_older_version(self):
        svc = _svc(0, 1, 2)
        svc.store(0, 100, "v0")
        svc.store(1, 100, "v1")
        assert svc.load(2, 100) == "v1"
        assert svc.load(1, 100) == "v1"
        assert svc.load(0, 100) == "v0"

    def test_load_falls_back_to_backing(self):
        svc = _svc(0, backing={4: 42})
        assert svc.load(0, 4) == 42

    def test_younger_store_invisible_to_older_thread(self):
        svc = _svc(0, 5)
        svc.store(5, 7, 99)
        assert svc.load(0, 7) == 0


class TestViolations:
    def test_late_store_flags_stale_reader(self):
        svc = _svc(0, 1)
        svc.load(1, 8)  # reads backing (source -1)
        violated = svc.store(0, 8, 3)
        assert violated == {1}

    def test_reader_of_newer_version_not_violated(self):
        svc = _svc(0, 1, 2)
        svc.store(1, 8, 10)
        svc.load(2, 8)  # reads thread 1's version
        violated = svc.store(0, 8, 77)  # older store can't affect reader
        assert violated == set()

    def test_own_store_never_violates_self(self):
        svc = _svc(0)
        svc.load(0, 8)
        assert svc.store(0, 8, 1) == set()


class TestLifecycle:
    def test_commit_merges_into_backing(self):
        svc = _svc(0, 1)
        svc.store(0, 3, 30)
        svc.commit(0)
        assert svc.architectural_value(3) == 30
        assert svc.load(1, 3) == 30

    def test_commit_must_be_in_order(self):
        svc = _svc(0, 1)
        with pytest.raises(VersioningError):
            svc.commit(1)

    def test_squash_discards_versions_and_reads(self):
        svc = _svc(0, 1)
        svc.store(1, 9, 100)
        svc.squash(1)
        svc.begin_thread(2)
        assert svc.load(2, 9) == 0
        assert svc.version_count(9) == 0

    def test_thread_protocol_errors(self):
        svc = _svc(0)
        with pytest.raises(VersioningError):
            svc.begin_thread(0)  # duplicate
        with pytest.raises(VersioningError):
            svc.load(3, 0)  # unknown thread
        svc.commit(0)
        with pytest.raises(VersioningError):
            svc.begin_thread(0)  # behind the committed prefix

    def test_active_threads_view(self):
        svc = _svc(0, 1)
        assert svc.active_threads() == {0, 1}
        svc.commit(0)
        assert svc.active_threads() == {1}


class TestSequentialConsistencyProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # thread
                st.integers(min_value=0, max_value=4),  # addr
                st.integers(min_value=1, max_value=99),  # value
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_commit_all_equals_sequential_execution(self, ops):
        """Storing per-thread then committing in order must equal executing
        the stores sequentially in thread order."""
        svc = _svc(0, 1, 2, 3)
        reference = {}
        for thread, addr, value in sorted(ops, key=lambda o: o[0]):
            svc.store(thread, addr, value)
        for thread, addr, value in sorted(ops, key=lambda o: o[0]):
            reference[addr] = value
        for t in range(4):
            svc.commit(t)
        for addr, value in reference.items():
            assert svc.architectural_value(addr) == value
