"""L1 cache model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import L1Cache


def _cache(**kw):
    defaults = dict(size_kb=1, assoc=2, block_words=8,
                    hit_latency=3, miss_latency=8)
    defaults.update(kw)
    return L1Cache(**defaults)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert c.access(0) == 8
        assert c.access(0) == 3

    def test_same_block_hits(self):
        c = _cache()
        c.access(0)
        for word in range(1, 8):
            assert c.access(word) == 3

    def test_different_block_misses(self):
        c = _cache()
        c.access(0)
        assert c.access(8) == 8

    def test_contains(self):
        c = _cache()
        assert not c.contains(5)
        c.access(5)
        assert c.contains(5)

    def test_miss_rate(self):
        c = _cache()
        c.access(0)
        c.access(0)
        assert c.miss_rate == 0.5


class TestLru:
    def test_eviction_in_lru_order(self):
        c = _cache(size_kb=1, assoc=2)  # 16 blocks, 8 sets
        n_sets = c.n_sets
        stride = n_sets * 8  # same set, different tags
        c.access(0)
        c.access(stride)
        c.access(0)  # refresh block 0
        c.access(2 * stride)  # evicts `stride`, not 0
        assert c.contains(0)
        assert not c.contains(stride)

    def test_paper_geometry(self):
        c = L1Cache(size_kb=32, assoc=2, block_words=8)
        assert c.n_sets == 512

    @pytest.mark.parametrize(
        "kw",
        [dict(size_kb=0), dict(assoc=0), dict(block_words=0),
         dict(size_kb=1, assoc=3)],
    )
    def test_bad_geometry_rejected(self, kw):
        with pytest.raises(ValueError):
            _cache(**kw)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4000), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_repeat_access_always_hits(self, addrs):
        c = _cache(size_kb=4)
        for addr in addrs:
            c.access(addr)
            assert c.access(addr) == c.hit_latency

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_set_occupancy_never_exceeds_assoc(self, addrs):
        c = _cache()
        for addr in addrs:
            c.access(addr, is_store=bool(addr & 1))
        # _sets is a lazy set-index -> ways dict (untouched sets absent).
        for ways in c._sets.values():
            assert len(ways) <= c.assoc
