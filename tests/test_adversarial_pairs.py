"""Robustness: the simulator must survive pathological pair tables.

A hardware pair table can hold garbage (wrong binary version, corrupted
profile); the processor must degrade gracefully, never crash, and never
violate its accounting invariants.
"""

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.spawning import PairKind, SpawnPair, SpawnPairSet


def _pair(sp, cqip, dist=64.0):
    return SpawnPair(sp, cqip, PairKind.PROFILE, 0.99, dist, dist)


def _check_invariants(trace, stats):
    assert stats.instructions == len(trace)
    assert sum(stats.thread_sizes) == len(trace)
    assert stats.threads_committed == stats.spawns + 1


ORDER_MODES = ("exact", "counter", "tail", "none")


@pytest.mark.parametrize("mode", ORDER_MODES)
class TestAdversarialPairs:
    def test_cqip_at_halt(self, loop_trace, mode):
        halt_pc = loop_trace[-1].pc
        pairs = SpawnPairSet([_pair(loop_trace[0].pc, halt_pc)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)

    def test_cqip_equals_sp_outside_a_loop(self, loop_trace, mode):
        # pc 0 executes once: a self-pair there can never re-occur
        pairs = SpawnPairSet([_pair(0, 0)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)
        assert stats.spawns == 0

    def test_nonexistent_pcs(self, loop_trace, mode):
        pairs = SpawnPairSet([_pair(99_999, 88_888)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)
        assert stats.spawns == 0

    def test_backwards_pair(self, loop_trace, mode):
        # CQIP textually before the SP: only reachable on the next
        # iteration — legal, possibly useful, must not break anything
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head + 2, head)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)

    def test_dense_overlapping_pairs(self, loop_trace, mode):
        # a pair on every pc of the loop body: maximal contention
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet(
            [_pair(head + k, head + k, dist=10.0) for k in range(6)]
        )
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)

    def test_zero_distance_estimate(self, loop_trace, mode):
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head, head, dist=0.0)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_order_check=mode)
        )
        _check_invariants(loop_trace, stats)


class TestAdversarialConfigs:
    def test_one_thread_unit_with_pairs(self, loop_trace):
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head, head)])
        stats = simulate(
            loop_trace, pairs, ProcessorConfig(num_thread_units=1)
        )
        _check_invariants(loop_trace, stats)
        assert stats.spawns == 0  # the only unit is always busy

    def test_tiny_rob_and_widths(self, loop_trace):
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head, head)])
        stats = simulate(
            loop_trace,
            pairs,
            ProcessorConfig(rob_size=2, fetch_width=1, issue_width=1),
        )
        _check_invariants(loop_trace, stats)

    def test_huge_overheads(self, loop_trace):
        head = min(loop_trace.program.loop_heads())
        pairs = SpawnPairSet([_pair(head, head)])
        stats = simulate(
            loop_trace,
            pairs,
            ProcessorConfig(init_overhead=500, spawn_cost=50, commit_latency=50),
        )
        _check_invariants(loop_trace, stats)
