"""Artifact-cache tests: determinism, invalidation, persistence."""

import pytest

from repro.cache import (
    ArtifactCache,
    canonical_key_fields,
    generator_version,
)
from repro.experiments import framework
from repro.spawning.pairs import SpawnPair, SpawnPairSet, PairKind

SCALE = 0.12


def _tiny_pairs() -> SpawnPairSet:
    return SpawnPairSet(
        [
            SpawnPair(
                sp_pc=4,
                cqip_pc=20,
                reach_probability=0.9,
                expected_distance=64.0,
                kind=PairKind.LOOP_ITERATION,
            )
        ],
        candidates_evaluated=3,
    )


class TestKeys:
    def test_key_is_deterministic(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = cache.key("pairs", workload="go", policy="profile", scale=1.0)
        b = cache.key("pairs", workload="go", policy="profile", scale=1.0)
        assert a == b

    def test_changed_knob_changes_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        base = cache.key("pairs", workload="go", policy="profile", scale=1.0)
        assert base != cache.key(
            "pairs", workload="go", policy="profile", scale=0.5
        )
        assert base != cache.key(
            "pairs", workload="go", policy="heuristics", scale=1.0
        )
        assert base != cache.key(
            "baseline", workload="go", policy="profile", scale=1.0
        )

    def test_field_order_is_irrelevant(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.key("pairs", a=1, b=2) == cache.key("pairs", b=2, a=1)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            ArtifactCache(tmp_path).key("nonsense", x=1)

    def test_canonical_fields_are_compact_and_sorted(self):
        text = canonical_key_fields({"b": 2, "a": [1.0, True]})
        assert text == '{"a":[1.0,true],"b":2}'

    def test_generator_version_is_stable(self):
        assert generator_version() == generator_version()
        assert len(generator_version()) == 16


class TestRoundTrip:
    def test_same_key_gives_byte_identical_artifact(self, tmp_path):
        built = []

        def build():
            built.append(1)
            return _tiny_pairs()

        first = ArtifactCache(tmp_path / "a")
        first.get_or_create("pairs", build, workload="x", scale=SCALE)
        blob_a = next((tmp_path / "a" / "pairs").iterdir()).read_bytes()

        second = ArtifactCache(tmp_path / "b")
        second.get_or_create("pairs", build, workload="x", scale=SCALE)
        blob_b = next((tmp_path / "b" / "pairs").iterdir()).read_bytes()

        assert blob_a == blob_b
        assert built == [1, 1]

    def test_miss_then_memory_then_disk_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = cache.get_or_create("pairs", _tiny_pairs, workload="x")
        assert cache.stats.misses == 1 and cache.stats.puts == 1
        again = cache.get_or_create("pairs", _tiny_pairs, workload="x")
        assert again is value
        assert cache.stats.memory_hits == 1

        fresh = ArtifactCache(tmp_path)
        reloaded = fresh.get_or_create("pairs", _tiny_pairs, workload="x")
        assert fresh.stats.disk_hits == 1 and fresh.stats.misses == 0
        assert [p.key() for p in reloaded.all_pairs()] == [
            p.key() for p in value.all_pairs()
        ]

    def test_changed_knob_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get_or_create("pairs", _tiny_pairs, workload="x", scale=1.0)
        cache.get_or_create("pairs", _tiny_pairs, workload="x", scale=0.5)
        assert cache.stats.misses == 2

    def test_clear_empties_the_store(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get_or_create("pairs", _tiny_pairs, workload="x")
        cache.get_or_create("baseline", lambda: 123, workload="x")
        assert cache.clear("pairs") == 1
        assert cache.clear() == 1
        assert cache.disk_summary() == {}

    def test_trace_round_trip_preserves_instructions(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with framework.use_cache(cache):
            first = framework.trace_for("compress", SCALE)
        framework.load_trace.cache_clear()
        with framework.use_cache(ArtifactCache(tmp_path)):
            second = framework.trace_for("compress", SCALE)
        assert len(first) == len(second)
        assert [d.pc for d in first] == [d.pc for d in second]


class TestFrameworkIntegration:
    def test_baseline_memoized_on_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with framework.use_cache(cache):
            cycles = framework.baseline_cycles("compress", scale=SCALE)
        framework.clear_memos()
        fresh = ArtifactCache(tmp_path)
        with framework.use_cache(fresh):
            assert framework.baseline_cycles("compress", scale=SCALE) == cycles
        assert fresh.stats.disk_hits >= 1
        framework.clear_memos()
