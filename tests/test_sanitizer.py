"""Replay sanitizer: clean grids, corruption surfacing, tampered streams."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.sanitizer import (
    REALISTIC_PREDICTORS,
    sanitize_events,
    sanitize_run,
)
from repro.cmt import ProcessorConfig, simulate
from repro.errors import InvariantViolation
from repro.faults import FaultInjector, FaultPlan, LiveinCorruptionFault
from repro.obs.events import (
    EV_LIVEIN_CORRUPT,
    EV_THREAD_COMMIT,
    EV_THREAD_SPAWN,
    EV_THREAD_SQUASH,
    EventTracer,
    events_from_jsonl,
)
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import load_trace, workload_names

GRID_SCALE = 0.1
GRID_PREDICTORS = ("perfect", "stride", "fcm")

_trace_cache = {}


def _cached_trace(name):
    if name not in _trace_cache:
        _trace_cache[name] = (
            load_trace(name, GRID_SCALE),
            None,
        )
        trace = _trace_cache[name][0]
        _trace_cache[name] = (trace, DependenceAnalysis(trace.program))
    return _trace_cache[name]


def _pairs_for(trace, policy):
    if policy == "heuristics":
        return heuristic_pairs(trace, HeuristicConfig())
    return select_profile_pairs(trace, ProfilePolicyConfig())


# ----------------------------------------------------------------------
# Clean runs: zero violations across the whole suite and predictor menu.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", ("profile", "heuristics"))
@pytest.mark.parametrize("name", workload_names())
def test_grid_is_clean(name, policy):
    trace, analysis = _cached_trace(name)
    pairs = _pairs_for(trace, policy)
    for vp in GRID_PREDICTORS:
        config = ProcessorConfig(num_thread_units=8, value_predictor=vp)
        stats, report = sanitize_run(
            trace, pairs, config, analysis=analysis
        )
        assert report.ok, f"{name}/{policy}/{vp}: {report.format()}"
        assert report.corruptions_flagged == 0
        assert stats.liveins_corrupted == 0
        # Something was actually asserted, not vacuously clean.
        assert sum(report.checks.values()) > 0


def test_single_threaded_run_is_clean(loop_trace):
    _, report = sanitize_run(loop_trace, pairs=None)
    assert report.ok, report.format()
    assert report.checks.get("commit-tiling", 0) > 0


# ----------------------------------------------------------------------
# Corruption campaigns: every injected corruption surfaces.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ("compress", "ijpeg"))
def test_corruptions_all_flagged(name):
    trace, analysis = _cached_trace(name)
    pairs = _pairs_for(trace, "profile")
    plan = FaultPlan(
        seed=11, livein_corruption=LiveinCorruptionFault(rate=0.5)
    )
    config = ProcessorConfig(num_thread_units=8, value_predictor="stride")
    stats, report = sanitize_run(
        trace, pairs, config, FaultInjector(plan), analysis=analysis
    )
    assert stats.liveins_corrupted > 0
    assert report.corruptions_flagged == stats.liveins_corrupted
    assert report.ok, report.format()


def test_realistic_predictor_set():
    assert "perfect" not in REALISTIC_PREDICTORS
    assert {"stride", "fcm", "last"} == set(REALISTIC_PREDICTORS)


# ----------------------------------------------------------------------
# JSONL round trip: the exported stream sanitizes identically.
# ----------------------------------------------------------------------


def test_jsonl_round_trip(loop_trace):
    pairs = heuristic_pairs(loop_trace, HeuristicConfig())
    config = ProcessorConfig(num_thread_units=4, value_predictor="stride")
    tracer = EventTracer()
    stats = simulate(loop_trace, pairs, config, tracer=tracer)
    direct = sanitize_events(
        loop_trace, tracer.events, stats=stats, compare_predictions=True
    )
    replayed = sanitize_events(
        loop_trace,
        events_from_jsonl(tracer.to_jsonl()),
        stats=stats,
        compare_predictions=True,
    )
    assert direct.ok and replayed.ok
    assert direct.to_dict() == replayed.to_dict()


# ----------------------------------------------------------------------
# Tampered streams: every mutation is caught by the right invariant.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_loop_run(request):
    loop_trace = request.getfixturevalue("loop_trace")
    pairs = heuristic_pairs(loop_trace, HeuristicConfig())
    config = ProcessorConfig(num_thread_units=4, value_predictor="stride")
    tracer = EventTracer()
    stats = simulate(loop_trace, pairs, config, tracer=tracer)
    events = list(tracer.events)
    assert any(e.kind == EV_THREAD_SPAWN for e in events)
    return loop_trace, events, stats


def _violated(report, invariant):
    return [v for v in report.violations if v.invariant == invariant]


def test_dropped_commit_breaks_tiling(traced_loop_run):
    trace, events, _ = traced_loop_run
    commit_idx = max(
        i for i, e in enumerate(events) if e.kind == EV_THREAD_COMMIT
    )
    tampered = events[:commit_idx] + events[commit_idx + 1:]
    report = sanitize_events(trace, tampered)
    assert not report.ok
    assert _violated(report, "commit-tiling")


def test_inflated_commit_size_breaks_tiling(traced_loop_run):
    trace, events, _ = traced_loop_run
    tampered = []
    inflated = False
    for event in events:
        if not inflated and event.kind == EV_THREAD_COMMIT:
            attrs = dict(event.attrs)
            attrs["size"] = int(attrs.get("size", 0)) + 7
            event = dataclasses.replace(event, attrs=attrs)
            inflated = True
        tampered.append(event)
    report = sanitize_events(trace, tampered)
    assert not report.ok
    assert _violated(report, "commit-tiling")


def test_fabricated_corruption_is_caught(traced_loop_run):
    trace, events, stats = traced_loop_run
    spawned = next(e.thread for e in events if e.kind == EV_THREAD_SPAWN)
    from repro.obs.events import SimEvent

    fake = SimEvent(
        EV_LIVEIN_CORRUPT, cycle=0, thread=spawned, attrs={"reg": 1}
    )
    report = sanitize_events(trace, events + [fake], stats=stats)
    assert not report.ok
    assert _violated(report, "corruption-surfaced")


def test_mutated_start_pos_breaks_spawn_target(traced_loop_run):
    trace, events, _ = traced_loop_run
    tampered = []
    mutated = False
    for event in events:
        if not mutated and event.kind == EV_THREAD_SPAWN:
            attrs = dict(event.attrs)
            attrs["start_pos"] = int(attrs["start_pos"]) + 1
            event = dataclasses.replace(event, attrs=attrs)
            mutated = True
        tampered.append(event)
    report = sanitize_events(trace, tampered)
    assert not report.ok
    assert _violated(report, "spawn-target")


def test_fold_then_commit_is_caught(traced_loop_run):
    trace, events, _ = traced_loop_run
    from repro.obs.events import SimEvent

    committed = next(
        e.thread
        for e in events
        if e.kind == EV_THREAD_COMMIT
        and any(
            s.kind == EV_THREAD_SPAWN and s.thread == e.thread
            for s in events
        )
    )
    fake_fold = SimEvent(
        EV_THREAD_SQUASH, cycle=0, thread=committed, attrs={"mode": "fold"}
    )
    report = sanitize_events(trace, [fake_fold] + events)
    assert not report.ok
    assert any(
        "folded" in v.message for v in _violated(report, "commit-tiling")
    )


def test_raise_first_raises_invariant_violation(traced_loop_run):
    trace, events, _ = traced_loop_run
    commit_idx = max(
        i for i, e in enumerate(events) if e.kind == EV_THREAD_COMMIT
    )
    report = sanitize_events(
        trace, events[:commit_idx] + events[commit_idx + 1:]
    )
    with pytest.raises(InvariantViolation):
        report.raise_first()
    # A clean report's raise_first is a no-op.
    sanitize_events(trace, events).raise_first()
