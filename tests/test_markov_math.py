"""Closed-form validation of the Markov reaching/distance mathematics.

Hand-computable chains verify the absorbing-chain first-passage
probabilities and the taboo-Green's-function distance formula the
:class:`MarkovReachingProfile` implements.
"""

import pytest

from repro.exec import run_program
from repro.isa import assemble
from repro.profiling import ControlFlowGraph, prune_cfg
from repro.profiling.reaching import MarkovReachingProfile


def _profile(text):
    trace = run_program(assemble(text))
    cfg = ControlFlowGraph.from_trace(trace)
    return cfg, MarkovReachingProfile(prune_cfg(cfg, coverage=1.0))


class TestLinearChain:
    """A -> B -> C straight line: everything is certain."""

    def test_probabilities_and_distances(self):
        # three blocks separated by jumps (single execution)
        cfg, profile = _profile(
            "li r1 1\njump b\nb: li r2 2\njump c\nc: li r3 3\nhalt"
        )
        a = cfg.block_of_pc(0)
        b = cfg.block_of_pc(2)
        c = cfg.block_of_pc(4)
        assert profile.prob[a, b] == pytest.approx(1.0)
        assert profile.prob[a, c] == pytest.approx(1.0)
        assert profile.prob[c, a] == pytest.approx(0.0)
        # distance = instructions from block start to block start
        assert profile.dist[a, b] == pytest.approx(2.0)
        assert profile.dist[a, c] == pytest.approx(4.0)


class TestGeometricLoop:
    """A loop taken with probability p: reach-self = p, and the expected
    distance of the continuation point mixes the geometric dwell time."""

    def test_loop_body_statistics(self):
        # 8 iterations: p(back) = 7/8 per header visit
        cfg, profile = _profile(
            "li r1 8\nloop: addi r2 r2 1\naddi r1 r1 -1\nbnez r1 loop\nhalt"
        )
        head = cfg.block_of_pc(1)
        exit_block = cfg.block_of_pc(4)
        p = 7 / 8
        assert profile.prob[head, head] == pytest.approx(p, abs=1e-9)
        # The paper's constraint: the source may appear only as the FIRST
        # element of a sequence, so walks that re-enter the header die.
        # Reaching the exit therefore requires leaving immediately (1/8) —
        # this is exactly why loop-continuation CQIPs score poorly under
        # the profile policy.
        assert profile.prob[head, exit_block] == pytest.approx(
            1 - p, abs=1e-9
        )
        # dist(head -> head) = body size = 3
        assert profile.dist[head, head] == pytest.approx(3.0, abs=1e-9)
        # conditioned on not re-entering the header: one body pass
        assert profile.dist[head, exit_block] == pytest.approx(3.0, abs=1e-6)


class TestBranchDiamond:
    """A 50/50 diamond: distances average the two arm lengths."""

    def test_diamond_distance_mixes_arms(self):
        # arm1: 1 extra instruction; arm2: 3 extra instructions
        text = (
            "li r3 4\n"
            "loop: andi r1 r3 1\n"
            "beqz r1 even\n"
            "addi r2 r2 1\n"
            "jump join\n"
            "even: addi r2 r2 1\naddi r2 r2 1\naddi r2 r2 1\n"
            "join: addi r3 r3 -1\n"
            "bnez r3 loop\n"
            "halt"
        )
        cfg, profile = _profile(text)
        head = cfg.block_of_pc(1)
        join = cfg.block_of_pc(8)
        assert profile.prob[head, join] == pytest.approx(1.0, abs=1e-9)
        # head block = (andi, beqz) = 2 instrs; taken arm = 3 instrs of
        # `even`, fall-through arm = (addi, jump) = 2 instrs; both arms
        # observed twice -> expected 2 + (3 + 2)/2 = 4.5
        assert profile.dist[head, join] == pytest.approx(4.5, abs=1e-6)
