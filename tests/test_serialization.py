"""Pair-table JSON serialization round-trips."""

import pytest

from repro.spawning import (
    PairKind,
    ProfilePolicyConfig,
    SpawnPair,
    SpawnPairSet,
    load_pair_set,
    pair_set_from_dict,
    pair_set_to_dict,
    save_pair_set,
    select_profile_pairs,
)


def _sample_set():
    return SpawnPairSet(
        [
            SpawnPair(10, 20, PairKind.PROFILE, 0.97, 64.0, 64.0),
            SpawnPair(10, 30, PairKind.PROFILE, 0.99, 40.0, 40.0),
            SpawnPair(55, 56, PairKind.RETURN_POINT, 0.4, 35.0, 35.0),
        ],
        candidates_evaluated=7,
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        original = _sample_set()
        restored = pair_set_from_dict(pair_set_to_dict(original))
        assert {p.key() for p in restored.all_pairs()} == {
            p.key() for p in original.all_pairs()
        }
        assert restored.candidates_evaluated == 7
        assert restored.primary(10).cqip_pc == original.primary(10).cqip_pc
        for sp in original.spawning_points():
            for a, b in zip(original.alternatives(sp), restored.alternatives(sp)):
                assert a.kind == b.kind
                assert a.reach_probability == b.reach_probability
                assert a.expected_distance == b.expected_distance

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "pairs.json"
        save_pair_set(_sample_set(), path)
        restored = load_pair_set(path)
        assert len(restored.all_pairs()) == 3

    def test_real_profile_round_trips(self, small_traces, tmp_path):
        pairs = select_profile_pairs(
            small_traces["vortex"],
            ProfilePolicyConfig(coverage=0.99, max_distance=4096),
        )
        path = tmp_path / "vortex.json"
        save_pair_set(pairs, path)
        restored = load_pair_set(path)
        assert {p.key() for p in restored.all_pairs()} == {
            p.key() for p in pairs.all_pairs()
        }

    def test_version_checked(self):
        data = pair_set_to_dict(_sample_set())
        data["version"] = 99
        with pytest.raises(ValueError):
            pair_set_from_dict(data)
