"""CFG pruning: coverage selection and flow-conserving node elimination."""

import pytest

from repro.exec import run_program
from repro.isa import assemble
from repro.profiling import ControlFlowGraph, prune_cfg


def _cfg(text):
    return ControlFlowGraph.from_trace(run_program(assemble(text)))


class TestCoverage:
    def test_full_coverage_keeps_everything(self, loop_trace):
        cfg = ControlFlowGraph.from_trace(loop_trace)
        pruned = prune_cfg(cfg, coverage=1.0)
        assert pruned.kept == frozenset(blk.bid for blk in cfg.blocks)

    def test_coverage_target_met(self, small_traces):
        for name, trace in small_traces.items():
            cfg = ControlFlowGraph.from_trace(trace)
            pruned = prune_cfg(cfg, coverage=0.9)
            assert pruned.coverage >= 0.9, name

    def test_hottest_blocks_survive(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["compress"])
        pruned = prune_cfg(cfg, coverage=0.5)
        hottest = max(cfg.blocks, key=lambda blk: blk.count)
        assert hottest.bid in pruned.kept

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_coverage_rejected(self, bad):
        cfg = _cfg("li r1 1\nhalt")
        with pytest.raises(ValueError):
            prune_cfg(cfg, coverage=bad)


class TestElimination:
    def test_pruned_nodes_leave_no_edges(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["vortex"])
        pruned = prune_cfg(cfg, coverage=0.7)
        for (u, v) in pruned.edges:
            assert u in pruned.kept and v in pruned.kept

    def test_flow_is_conserved_through_elimination(self):
        # diamond: A -> B (cold) -> C; A -> C.  Eliminating B must route
        # its incoming flow to C.
        text = (
            "li r1 4\n"
            "loop: andi r2 r1 1\n"
            "beqz r2 even\n"
            "addi r3 r3 1\n"  # odd path (block B)
            "even: addi r1 r1 -1\n"
            "bnez r1 loop\n"
            "halt"
        )
        cfg = _cfg(text)
        pruned = prune_cfg(cfg, coverage=0.99)
        for bid in pruned.kept:
            inflow = sum(w for (u, v), w in pruned.edges.items() if v == bid)
            original_inflow = sum(
                w for (u, v), w in cfg.edges.items() if v == bid
            )
            # rerouted flow can only add to a surviving node's inflow
            assert inflow >= 0
            if bid in {u for u, _ in cfg.edges} | {v for _, v in cfg.edges}:
                assert inflow <= sum(cfg.edges.values())
        del original_inflow

    def test_total_exit_flow_preserved(self, small_traces):
        """Eliminating nodes must not create or destroy edge flow, modulo
        flow that dies in pruned sinks."""
        cfg = ControlFlowGraph.from_trace(small_traces["m88ksim"])
        pruned = prune_cfg(cfg, coverage=0.8)
        kept_flow = sum(pruned.edges.values())
        assert 0 < kept_flow <= sum(cfg.edges.values()) + 1e-6

    def test_out_weight_helper(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["compress"])
        pruned = prune_cfg(cfg)
        for bid in pruned.kept:
            expected = sum(
                w for (u, _v), w in pruned.edges.items() if u == bid
            )
            assert pruned.out_weight(bid) == pytest.approx(expected)
