"""Serve daemon end to end: HTTP API, degradation, crash recovery."""

import json
import os
import signal
import time

import pytest

from repro.serve.bench import ServeClient, _spawn_daemon, _wait_endpoint
from repro.serve.server import ServeConfig, ServeDaemon


def start_daemon(tmp_path, **overrides):
    config = dict(
        workers=2,
        state_dir=tmp_path / "state",
        cache_dir=str(tmp_path / "cache"),
        timeout=20.0,
        retries=1,
        backoff=0.01,
        fsync=False,
    )
    config.update(overrides)
    daemon = ServeDaemon(ServeConfig(**config))
    daemon.start()
    return daemon, ServeClient(*daemon.address)


def wait_state(client, job_id, state, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.status(job_id)[1].get("state") == state:
            return True
        time.sleep(0.02)
    return False


class TestHttpApi:
    def test_submit_status_result_roundtrip(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            status, body = client.submit(
                "sleep", {"duration": 0.01, "tag": "rt"}
            )
            assert status == 202
            assert body["outcome"] == "accepted"
            final = client.wait(body["id"])
            assert final["state"] == "done"
            assert "result" not in final  # status view omits payloads
            status, result = client.result(body["id"])
            assert status == 200
            assert result["result"]["tag"] == "rt"
        finally:
            daemon.stop()

    def test_duplicate_submit_dedups(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            _, first = client.submit("sleep", {"duration": 0.01})
            status, second = client.submit("sleep", {"duration": 0.01})
            assert status == 200
            assert second["outcome"] == "dedup"
            assert second["id"] == first["id"]
        finally:
            daemon.stop()

    def test_bad_requests_are_400(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            status, _ = client.request("POST", "/jobs", {"params": {}})
            assert status == 400
            status, _ = client.submit("no-such-runner", {})
            assert status == 400
            status, _ = client.submit(
                "sleep", {"duration": 0.01}, priority="urgent"
            )
            assert status == 400
        finally:
            daemon.stop()

    def test_unknown_routes_and_jobs_are_404(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            assert client.request("GET", "/nope")[0] == 404
            assert client.status("missing")[0] == 404
            assert client.cancel("missing")[0] == 404
        finally:
            daemon.stop()

    def test_result_before_done_is_409(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            _, body = client.submit("sleep", {"duration": 5.0})
            status, payload = client.result(body["id"])
            assert status == 409
            client.cancel(body["id"])
        finally:
            daemon.stop()

    def test_healthz_and_metrics(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            _, body = client.submit("sleep", {"duration": 0.01})
            client.wait(body["id"])
            health = client.health()
            assert health["ok"] is True
            assert health["jobs"].get("done") == 1
            text = client.metrics()
            assert "repro_serve_jobs_submitted_total" in text
            assert "repro_serve_job_seconds" in text
        finally:
            daemon.stop()

    def test_jobs_listing_filters_by_state(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            _, body = client.submit("sleep", {"duration": 0.01})
            client.wait(body["id"])
            status, listing = client.request("GET", "/jobs?state=done")
            assert status == 200
            assert [j["id"] for j in listing["jobs"]] == [body["id"]]
            assert client.request(
                "GET", "/jobs?state=queued"
            )[1]["jobs"] == []
        finally:
            daemon.stop()


class TestDegradation:
    def test_full_queue_is_429(self, tmp_path):
        daemon, client = start_daemon(
            tmp_path, workers=1, max_queued=1, shed_ratio=1.0
        )
        try:
            _, running = client.submit("sleep", {"duration": 5.0})
            assert wait_state(client, running["id"], "running")
            _, queued = client.submit(
                "sleep", {"duration": 5.0, "tag": "q"}
            )
            status, body = client.submit(
                "sleep", {"duration": 5.0, "tag": "reject"}
            )
            assert status == 429
            assert body["reason"] == "full"
            client.cancel(running["id"])
            client.cancel(queued["id"])
        finally:
            daemon.stop()

    def test_low_priority_shed_is_429(self, tmp_path):
        daemon, client = start_daemon(
            tmp_path, workers=1, max_queued=2, shed_ratio=0.0
        )
        try:
            status, body = client.submit(
                "sleep", {"duration": 0.01}, priority="low"
            )
            assert status == 429
            assert body["reason"] == "shedding"
        finally:
            daemon.stop()

    def test_cancel_running_job_hard_kills(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        try:
            _, body = client.submit("sleep", {"duration": 30.0})
            assert wait_state(client, body["id"], "running")
            status, verdict = client.cancel(body["id"])
            assert status == 202
            final = client.wait(body["id"], timeout=10.0)
            assert final["state"] == "cancelled"
        finally:
            daemon.stop()

    def test_timeout_then_retries_exhaust(self, tmp_path):
        daemon, client = start_daemon(tmp_path, timeout=0.3, retries=1)
        try:
            _, body = client.submit("sleep", {"duration": 30.0})
            final = client.wait(body["id"], timeout=20.0)
            assert final["state"] == "failed"
            assert final["error_type"] == "SimulationTimeout"
            assert final["attempts"] == 2
        finally:
            daemon.stop()

    def test_poison_quarantines_without_retry(self, tmp_path):
        daemon, client = start_daemon(tmp_path, retries=3)
        try:
            _, body = client.submit(
                "sleep", {"duration": 0.0, "fail": "poison"}
            )
            final = client.wait(body["id"])
            assert final["state"] == "quarantined"
            assert final["attempts"] == 1  # poison never retries
        finally:
            daemon.stop()

    def test_drain_rejects_with_503_and_finishes_work(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        _, body = client.submit("sleep", {"duration": 0.3})
        status, _ = client.drain()
        assert status == 202
        status, payload = client.submit(
            "sleep", {"duration": 0.01, "tag": "late"}
        )
        assert status == 503
        assert payload["reason"] == "draining"
        assert daemon.wait_drained(timeout=15.0)
        audit = daemon.audit()
        assert audit["lost"] == 0
        job = daemon.queue.get(body["id"])
        assert job.state.value == "done"  # in-flight work completed


class TestProvenance:
    def test_manifest_written_per_job(self, tmp_path):
        daemon, client = start_daemon(
            tmp_path, telemetry_dir=str(tmp_path / "telemetry")
        )
        try:
            _, body = client.submit("sleep", {"duration": 0.01})
            client.wait(body["id"])
            deadline = time.monotonic() + 5.0
            manifests = []
            while time.monotonic() < deadline and not manifests:
                manifests = list(tmp_path.glob("telemetry/*.json"))
                time.sleep(0.02)
            assert manifests, "no provenance manifest written"
            data = json.loads(manifests[0].read_text())
            assert data["name"] == f"job-{body['id']}"
            assert data["ok"] is True
            assert data["config"]["runner"] == "sleep"
        finally:
            daemon.stop()


class TestCrashRecovery:
    def test_kill_9_mid_queue_completes_every_job_exactly_once(
        self, tmp_path
    ):
        state_dir = tmp_path / "state"
        proc = _spawn_daemon(state_dir)
        try:
            endpoint = _wait_endpoint(state_dir, proc)
            client = ServeClient(endpoint["host"], int(endpoint["port"]))
            ids = []
            for index in range(8):
                status, payload = client.submit(
                    "sleep", {"duration": 0.25, "tag": f"c{index}"}
                )
                assert status == 202
                ids.append(payload["id"])
            time.sleep(0.5)  # some done, some running, some queued
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)

            proc = _spawn_daemon(state_dir)
            endpoint = _wait_endpoint(state_dir, proc)
            client = ServeClient(endpoint["host"], int(endpoint["port"]))
            finals = [client.wait(job_id, timeout=60.0) for job_id in ids]
            health = client.health()
            client.drain()
            assert proc.wait(timeout=30.0) == 0

            assert all(f["state"] == "done" for f in finals)
            assert health["recovery"]["duplicate_finishes"] == 0
            assert health["recovery"]["requeued"] >= 1
            assert len({f["id"] for f in finals}) == len(ids)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)

    def test_restart_after_clean_drain_recovers_results(self, tmp_path):
        daemon, client = start_daemon(tmp_path)
        _, body = client.submit("sleep", {"duration": 0.01, "tag": "r"})
        client.wait(body["id"])
        assert daemon.drain(timeout=10.0)

        reborn = ServeDaemon(ServeConfig(
            state_dir=tmp_path / "state", fsync=False
        ))
        job = reborn.queue.get(body["id"])
        assert job is not None and job.state.value == "done"
        assert job.result["tag"] == "r"
        assert reborn.recovery.requeued == 0
        reborn.journal.close()


class TestSmokeGate:
    def test_run_serve_smoke_passes(self, tmp_path):
        from repro.serve.bench import run_serve_smoke

        report = run_serve_smoke(tmp_path / "smoke")
        failed = [c for c in report["checks"] if not c["ok"]]
        assert report["ok"], f"failed checks: {failed}"
