"""Profile-based spawning-pair selection tests (the paper's Section 3.1)."""

import pytest

from repro.spawning import (
    PairKind,
    ProfilePolicyConfig,
    SpawnPair,
    SpawnPairSet,
    select_profile_pairs,
)

CFG = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


class TestThresholds:
    def test_probability_threshold_respected(self, small_traces):
        pairs = select_profile_pairs(small_traces["vortex"], CFG)
        for pair in pairs.all_pairs():
            if pair.kind is PairKind.PROFILE:
                assert pair.reach_probability >= CFG.min_probability

    def test_distance_window_respected(self, small_traces):
        pairs = select_profile_pairs(small_traces["vortex"], CFG)
        for pair in pairs.all_pairs():
            if pair.kind is PairKind.PROFILE:
                assert (
                    CFG.min_distance
                    <= pair.expected_distance
                    <= CFG.max_distance
                )

    def test_stricter_probability_selects_fewer(self, small_traces):
        loose = select_profile_pairs(
            small_traces["m88ksim"],
            ProfilePolicyConfig(min_probability=0.5, coverage=0.99,
                                include_return_points=False),
        )
        strict = select_profile_pairs(
            small_traces["m88ksim"],
            ProfilePolicyConfig(min_probability=0.999, coverage=0.99,
                                include_return_points=False),
        )
        assert strict.candidates_evaluated <= loose.candidates_evaluated

    def test_unknown_ordering_rejected(self, small_traces):
        with pytest.raises(ValueError):
            select_profile_pairs(
                small_traces["compress"],
                ProfilePolicyConfig(ordering="vibes"),
            )


class TestReturnPoints:
    def test_return_point_pairs_added_for_multi_caller_subroutine(self):
        """A subroutine called from several sites dilutes each call's
        reaching probability, which is exactly the case the paper adds
        return-point pairs for."""
        from repro.exec import run_program
        from repro.isa import ProgramBuilder

        b = ProgramBuilder()
        i = b.reg("i")
        with b.for_range(i, 0, 30):
            b.call("work")
            b.nop()
            b.call("work")
            b.nop()
            b.call("work")
        b.halt()
        with b.function("work"):
            x = b.reg("x")
            for _ in range(40):
                b.addi(x, x, 1)
        trace = run_program(b.build())
        pairs = select_profile_pairs(trace, CFG)
        kinds = {p.kind for p in pairs.all_pairs()}
        assert PairKind.RETURN_POINT in kinds

    def test_return_points_can_be_disabled(self, small_traces):
        cfg = ProfilePolicyConfig(
            coverage=0.99, max_distance=4096, include_return_points=False
        )
        pairs = select_profile_pairs(small_traces["vortex"], cfg)
        assert all(
            p.kind is not PairKind.RETURN_POINT for p in pairs.all_pairs()
        )

    def test_return_point_is_static_successor_of_call(self, small_traces):
        pairs = select_profile_pairs(small_traces["vortex"], CFG)
        call_sites = set(small_traces["vortex"].program.call_sites())
        for pair in pairs.all_pairs():
            if pair.kind is PairKind.RETURN_POINT:
                assert pair.sp_pc in call_sites
                assert pair.cqip_pc == pair.sp_pc + 1


class TestOrderingCriteria:
    def test_distance_ordering_sorts_by_distance(self, small_traces):
        pairs = select_profile_pairs(small_traces["m88ksim"], CFG)
        for sp in pairs.spawning_points():
            alts = [
                p for p in pairs.alternatives(sp) if p.kind is PairKind.PROFILE
            ]
            scores = [p.score for p in alts]
            assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize("ordering", ["independent", "predictable"])
    def test_alternative_orderings_produce_pairs(self, small_traces, ordering):
        cfg = ProfilePolicyConfig(
            coverage=0.99, max_distance=4096, ordering=ordering
        )
        pairs = select_profile_pairs(small_traces["compress"], cfg)
        assert len(pairs) > 0


class TestDedupe:
    def test_dedupe_reduces_spawning_points(self, small_traces):
        with_dedupe = select_profile_pairs(small_traces["compress"], CFG)
        cfg_off = ProfilePolicyConfig(
            coverage=0.99, max_distance=4096, dedupe_mutual_sps=False
        )
        without = select_profile_pairs(small_traces["compress"], cfg_off)
        assert len(with_dedupe) <= len(without)


class TestSpawnPairSet:
    def _mk(self, sp, cqip, score):
        return SpawnPair(
            sp_pc=sp,
            cqip_pc=cqip,
            kind=PairKind.PROFILE,
            reach_probability=1.0,
            expected_distance=score,
            score=score,
        )

    def test_alternatives_ordered_by_score(self):
        pairs = SpawnPairSet([self._mk(1, 2, 10), self._mk(1, 3, 50)])
        assert [p.cqip_pc for p in pairs.alternatives(1)] == [3, 2]
        assert pairs.primary(1).cqip_pc == 3

    def test_primary_of_unknown_sp_is_none(self):
        assert SpawnPairSet([]).primary(7) is None

    def test_merged_with_prefers_first_set(self):
        a = SpawnPairSet([self._mk(1, 2, 10)])
        b = SpawnPairSet([self._mk(1, 2, 99), self._mk(4, 5, 1)])
        merged = a.merged_with(b)
        assert merged.primary(1).score == 10
        assert merged.primary(4) is not None

    def test_iteration_yields_primaries(self):
        pairs = SpawnPairSet([self._mk(1, 2, 10), self._mk(3, 4, 5)])
        assert len(list(pairs)) == 2
