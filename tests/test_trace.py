"""Dynamic-trace index and dependence tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import run_program
from repro.isa import ProgramBuilder, assemble


class TestPcIndex:
    def test_positions_are_sorted_and_complete(self, loop_trace):
        total = sum(len(loop_trace.positions_of(pc)) for pc in loop_trace.pc_index)
        assert total == len(loop_trace)
        for positions in loop_trace.pc_index.values():
            assert positions == sorted(positions)

    def test_next_occurrence_respects_open_interval(self, loop_trace):
        pc = loop_trace[10].pc
        positions = loop_trace.positions_of(pc)
        if len(positions) >= 2:
            first, second = positions[0], positions[1]
            assert loop_trace.next_occurrence(pc, first, second + 1) == second
            assert loop_trace.next_occurrence(pc, first, second) is None

    def test_next_occurrence_missing_pc(self, loop_trace):
        assert loop_trace.next_occurrence(10_000, 0, len(loop_trace)) is None


class TestRegisterDeps:
    def test_deps_point_to_actual_writers(self, loop_trace):
        deps = loop_trace.register_deps
        for pos in range(min(len(loop_trace), 500)):
            inst = loop_trace[pos]
            for src_i, producer in enumerate(deps[pos]):
                reg = inst.srcs[src_i]
                if producer >= 0:
                    assert loop_trace[producer].dst == reg
                    # no intervening writer
                    for mid in range(producer + 1, pos):
                        assert loop_trace[mid].dst != reg
                else:
                    for mid in range(pos):
                        assert loop_trace[mid].dst != reg

    def test_memory_deps_point_to_stores(self, loop_trace):
        mem = loop_trace.memory_deps
        for pos in range(len(loop_trace)):
            producer = mem[pos]
            if producer >= 0:
                assert loop_trace[producer].is_store
                assert loop_trace[producer].addr == loop_trace[pos].addr


class TestRegisterValues:
    def test_value_of_register_matches_dataflow(self, loop_trace):
        # value before pos must equal the last writer's dst_value
        deps = loop_trace.register_deps
        for pos in range(0, min(len(loop_trace), 300), 7):
            inst = loop_trace[pos]
            for src_i, reg in enumerate(inst.srcs):
                expected = (
                    loop_trace[deps[pos][src_i]].dst_value
                    if deps[pos][src_i] >= 0
                    else 0
                )
                assert loop_trace.value_of_register_at(reg, pos) == expected

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_value_query_against_brute_force(self, reg):
        program = assemble(
            "li r1 5\nloop: addi r1 r1 -1\nadd r2 r1 r1\nbnez r1 loop\nhalt"
        )
        trace = run_program(program)
        pos = len(trace) // 2
        brute = 0
        for p in range(pos - 1, -1, -1):
            if trace[p].dst == reg:
                brute = trace[p].dst_value
                break
        assert trace.value_of_register_at(reg, pos) == brute

    def test_register_writes_index(self):
        trace = run_program(assemble("li r1 1\nli r1 2\nli r2 3\nhalt"))
        positions, values = trace.register_writes[1]
        assert positions == [0, 1]
        assert values == [1, 2]


class TestNextOccurrenceEdges:
    """Boundary behaviour of the bisect-backed occurrence lookup."""

    def test_empty_interval_returns_none(self, loop_trace):
        pc = loop_trace[10].pc
        first = loop_trace.positions_of(pc)[0]
        assert loop_trace.next_occurrence(pc, first, first) is None
        assert loop_trace.next_occurrence(pc, first, first - 1) is None

    def test_after_equal_to_position_is_excluded(self, loop_trace):
        pc = loop_trace[10].pc
        positions = loop_trace.positions_of(pc)
        last = positions[-1]
        # The interval is open on the left: `after` itself never matches.
        assert loop_trace.next_occurrence(pc, last, len(loop_trace)) is None

    def test_after_beyond_trace_returns_none(self, loop_trace):
        pc = loop_trace[10].pc
        assert loop_trace.next_occurrence(
            pc, len(loop_trace) + 5, len(loop_trace) + 50
        ) is None

    def test_negative_after_finds_first(self, loop_trace):
        pc = loop_trace[10].pc
        first = loop_trace.positions_of(pc)[0]
        assert loop_trace.next_occurrence(pc, -1, len(loop_trace)) == first

    def test_matches_linear_scan(self, loop_trace):
        # The bisect result agrees with a brute-force scan over a window.
        pc = loop_trace[10].pc
        for after in (0, 5, 40, 200):
            before = after + 60
            expected = next(
                (
                    pos
                    for pos in range(after + 1, min(before, len(loop_trace)))
                    if loop_trace[pos].pc == pc
                ),
                None,
            )
            assert loop_trace.next_occurrence(pc, after, before) == expected
