"""Liveness and reaching-definitions on hand-built programs with known
answers."""

from repro.analysis import (
    StaticCFG,
    dead_stores,
    inst_def,
    inst_uses,
    solve_liveness,
    solve_reaching,
)
from repro.isa import ProgramBuilder
from repro.isa.builder import ARG_REGS, RV_REG
from repro.isa.instructions import Instruction, Opcode


class TestDefsUses:
    def test_alu_def_and_uses(self):
        inst = Instruction(Opcode.ADD, dst=3, srcs=(1, 2))
        assert inst_def(inst) == 3
        assert inst_uses(inst) == (1, 2)

    def test_store_has_no_def(self):
        inst = Instruction(Opcode.STORE, srcs=(4, 5), imm=0)
        assert inst_def(inst) is None
        assert inst_uses(inst) == (4, 5)

    def test_r0_excluded(self):
        inst = Instruction(Opcode.ADD, dst=0, srcs=(0, 2))
        assert inst_def(inst) is None
        assert inst_uses(inst) == (2,)


def _build_linear():
    """r1=li; r2=r1+r1; store r2; halt — r1 dead after pc1, r2 after store."""
    b = ProgramBuilder("linear")
    r1, r2, a = b.reg("r1"), b.reg("r2"), b.reg("a")
    b.li(r1, 7)          # pc 0
    b.add(r2, r1, r1)    # pc 1
    b.li(a, 0x1000)      # pc 2
    b.store(r2, a)       # pc 3
    b.halt()             # pc 4
    return b.build()


class TestLiveness:
    def test_linear_liveness(self):
        cfg = StaticCFG(_build_linear())
        live = solve_liveness(cfg)
        # Before pc1 the add needs r1; before pc3 the store needs r2 and a.
        assert live.live_before(1) == frozenset({cfg.program[0].dst})
        r2 = cfg.program[1].dst
        a = cfg.program[2].dst
        assert live.live_before(3) == frozenset({r2, a})
        assert live.live_after(3) == frozenset()

    def test_loop_carried_register_is_live_at_head(self):
        b = ProgramBuilder("loop")
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, 0)
        with b.for_range(i, 0, 8):
            b.add(acc, acc, i)
        b.store(acc, i)
        b.halt()
        program = b.build()
        cfg = StaticCFG(program)
        live = solve_liveness(cfg)
        head = next(iter(program.loop_heads()))
        # Both the accumulator and the counter are live at the loop head.
        assert acc in live.live_before(head)
        assert i in live.live_before(head)

    def test_argument_flows_into_callee(self):
        b = ProgramBuilder("callarg")
        x = b.reg("x")
        b.li(x, 3)
        b.mov(ARG_REGS[0], x)
        call_pc = b.here()
        b.call("f")
        b.mov(x, RV_REG)
        b.store(x, x)
        b.halt()
        with b.function("f"):
            b.addi(RV_REG, ARG_REGS[0], 1)
        program = b.build()
        cfg = StaticCFG(program)
        live = solve_liveness(cfg)
        # The argument register is live across the call edge.
        assert ARG_REGS[0] in live.live_before(call_pc)
        # The return value is live at the ret (read by the continuation).
        entry = program.labels["f"]
        assert RV_REG in live.live_after(entry)


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        cfg = StaticCFG(_build_linear())
        reach = solve_reaching(cfg)
        assert reach.defs_reaching(1) >= {0}

    def test_redefinition_kills(self):
        b = ProgramBuilder("kill")
        r = b.reg("r")
        b.li(r, 1)   # pc 0
        b.li(r, 2)   # pc 1 kills pc 0
        b.store(r, r)
        b.halt()
        cfg = StaticCFG(b.build())
        reach = solve_reaching(cfg)
        assert 0 not in reach.defs_reaching(2)
        assert 1 in reach.defs_reaching(2)

    def test_branch_merges_definitions(self):
        b = ProgramBuilder("merge")
        x, y = b.reg("x"), b.reg("y")
        b.li(x, 1)
        b.if_else(
            Opcode.BEQZ, (x,), lambda: b.li(y, 1), lambda: b.li(y, 2)
        )
        join = b.here()
        b.store(y, x)
        b.halt()
        cfg = StaticCFG(b.build())
        reach = solve_reaching(cfg)
        y_defs = {
            pc
            for pc in reach.defs_reaching(join)
            if cfg.program[pc].dst == y
        }
        assert len(y_defs) == 2

    def test_undefined_read_detected(self):
        b = ProgramBuilder("undef")
        x, y = b.reg("x"), b.reg("y")
        b.add(x, y, y)  # y never written
        b.store(x, x)
        b.halt()
        cfg = StaticCFG(b.build())
        reads = solve_reaching(cfg).undefined_reads()
        assert any(r.pc == 0 and r.reg == y for r in reads)

    def test_clean_program_has_no_undefined_reads(self):
        cfg = StaticCFG(_build_linear())
        assert solve_reaching(cfg).undefined_reads() == []


class TestDeadStores:
    def test_final_unused_write_is_dead(self):
        b = ProgramBuilder("dead")
        r = b.reg("r")
        b.li(r, 1)
        b.store(r, r)
        b.addi(r, r, 1)  # result never read
        b.halt()
        cfg = StaticCFG(b.build())
        dead = dead_stores(cfg)
        assert [d.pc for d in dead] == [2]

    def test_overwritten_write_is_dead(self):
        b = ProgramBuilder("dead2")
        r = b.reg("r")
        b.li(r, 1)  # dead: overwritten before any read
        b.li(r, 2)
        b.store(r, r)
        b.halt()
        cfg = StaticCFG(b.build())
        assert [d.pc for d in dead_stores(cfg)] == [0]

    def test_loop_carried_write_is_not_dead(self):
        b = ProgramBuilder("loopacc")
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, 0)
        with b.for_range(i, 0, 8):
            b.add(acc, acc, i)
        b.store(acc, i)
        b.halt()
        cfg = StaticCFG(b.build())
        dead_regs = {d.reg for d in dead_stores(cfg)}
        assert acc not in dead_regs
