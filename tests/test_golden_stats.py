"""Golden-stats regression gate for the simulator.

Committed JSON fixtures pin the *complete* ``SimulationStats`` of two
representative workloads across both pair schemes and three value
predictors.  Any change to simulator semantics — intended or not —
shows up as a diff here before it can silently shift the reproduced
figures.  After a deliberate semantic change, regenerate with::

    pytest tests/test_golden_stats.py --regen-goldens

and review the fixture diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import load_trace

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_SCALE = 0.2
WORKLOADS = ("compress", "li")
POLICIES = ("profile", "heuristics")
PREDICTORS = ("perfect", "stride", "fcm")

#: Matches the experiment framework's profile-policy parameters.
POLICY_CONFIG = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


def _point(trace, policy: str, predictor: str, sim_core: str) -> dict:
    if policy == "heuristics":
        pairs = heuristic_pairs(trace, HeuristicConfig())
    else:
        pairs = select_profile_pairs(trace, POLICY_CONFIG)
    config = ProcessorConfig(value_predictor=predictor, sim_core=sim_core)
    stats = simulate(trace, pairs, config)
    # JSON round-trip normalises tuples to lists so the comparison with
    # the loaded fixture is structural, not type-sensitive.
    return json.loads(json.dumps(stats.to_dict()))


def _golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"stats_{workload}.json"


def _compute(workload: str, sim_core: str = "columnar") -> dict:
    trace = load_trace(workload, GOLDEN_SCALE)
    return {
        f"{policy}/{predictor}": _point(trace, policy, predictor, sim_core)
        for policy in POLICIES
        for predictor in PREDICTORS
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_stats_match_goldens(request, workload):
    path = _golden_path(workload)
    current = _compute(workload)
    if request.config.getoption("--regen-goldens"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(current, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.is_file(), (
        f"missing golden fixture {path}; create it with "
        "pytest tests/test_golden_stats.py --regen-goldens"
    )
    golden = json.loads(path.read_text())
    assert sorted(current) == sorted(golden)
    for key in sorted(current):
        assert current[key] == golden[key], (
            f"{workload} {key}: simulated stats diverged from the golden "
            "fixture (regenerate with --regen-goldens only if the "
            "semantic change is intentional)"
        )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_event_core_matches_goldens(request, workload):
    """The event core reproduces the committed fixtures bit for bit."""
    path = _golden_path(workload)
    if request.config.getoption("--regen-goldens") or not path.is_file():
        pytest.skip("fixtures regenerated or absent; columnar test owns them")
    golden = json.loads(path.read_text())
    current = _compute(workload, sim_core="event")
    assert sorted(current) == sorted(golden)
    for key in sorted(current):
        assert current[key] == golden[key], (
            f"{workload} {key}: event-core stats diverged from the golden "
            "fixture"
        )
