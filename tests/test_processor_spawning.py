"""Speculative-spawning behaviour of the clustered processor."""

import pytest

from repro.cmt import ClusteredProcessor, ProcessorConfig, simulate
from repro.spawning import (
    PairKind,
    ProfilePolicyConfig,
    SpawnPair,
    SpawnPairSet,
    select_profile_pairs,
)

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


def _loop_pairs(trace):
    """The canonical loop-iteration pair of the fixture loop."""
    head = min(trace.program.loop_heads())
    positions = trace.positions_of(head)
    distance = positions[1] - positions[0]
    return SpawnPairSet(
        [
            SpawnPair(
                sp_pc=head,
                cqip_pc=head,
                kind=PairKind.LOOP_ITERATION,
                reach_probability=1.0,
                expected_distance=float(distance),
                score=float(distance),
            )
        ]
    )


class TestSpawning:
    def test_independent_loop_speeds_up(self, loop_trace):
        base = simulate(loop_trace, None, ProcessorConfig().single_threaded())
        multi = simulate(loop_trace, _loop_pairs(loop_trace), ProcessorConfig())
        assert multi.spawns > 10
        assert multi.cycles < base.cycles
        assert base.cycles / multi.cycles > 2.0

    def test_thread_sizes_tile_the_trace(self, loop_trace):
        stats = simulate(loop_trace, _loop_pairs(loop_trace), ProcessorConfig())
        assert sum(stats.thread_sizes) == len(loop_trace)
        assert stats.threads_committed == stats.spawns + 1

    def test_thread_unit_limit_bounds_activity(self, loop_trace):
        pairs = _loop_pairs(loop_trace)
        for tus in (2, 4, 16):
            stats = simulate(
                loop_trace, pairs, ProcessorConfig(num_thread_units=tus)
            )
            assert stats.avg_active_threads <= tus + 1e-9

    def test_more_thread_units_never_slower(self, loop_trace):
        pairs = _loop_pairs(loop_trace)
        c4 = simulate(loop_trace, pairs, ProcessorConfig(num_thread_units=4))
        c16 = simulate(loop_trace, pairs, ProcessorConfig(num_thread_units=16))
        assert c16.cycles <= c4.cycles * 1.1

    def test_serial_loop_gains_little(self, serial_trace):
        base = simulate(serial_trace, None, ProcessorConfig().single_threaded())
        multi = simulate(
            serial_trace,
            _loop_pairs(serial_trace),
            ProcessorConfig(value_predictor="none"),
        )
        # iterations chained through a register with no prediction: the
        # speed-up cannot approach the thread-unit count
        assert base.cycles / multi.cycles < 3.0


class TestControlMisspeculation:
    def test_unreachable_cqip_ghosts_without_order_check(self, loop_trace):
        bogus = SpawnPairSet(
            [
                SpawnPair(
                    sp_pc=min(loop_trace.program.loop_heads()),
                    cqip_pc=10_000,  # never executed
                    kind=PairKind.PROFILE,
                    reach_probability=1.0,
                    expected_distance=64.0,
                    score=64.0,
                )
            ]
        )
        stats = simulate(
            loop_trace, bogus, ProcessorConfig(spawn_order_check="none")
        )
        assert stats.control_misspeculations > 0
        assert stats.threads_committed == 1  # only the root does real work

    def test_exact_order_check_rejects_silently(self, loop_trace):
        bogus = SpawnPairSet(
            [
                SpawnPair(
                    sp_pc=min(loop_trace.program.loop_heads()),
                    cqip_pc=10_000,
                    kind=PairKind.PROFILE,
                    reach_probability=1.0,
                    expected_distance=64.0,
                    score=64.0,
                )
            ]
        )
        stats = simulate(
            loop_trace, bogus, ProcessorConfig(spawn_order_check="exact")
        )
        assert stats.control_misspeculations == 0
        assert stats.spawns_rejected_order > 0


class TestValuePredictionEffects:
    def test_perfect_at_least_as_fast_as_none(self, small_traces):
        trace = small_traces["vortex"]
        pairs = select_profile_pairs(trace, POLICY)
        perfect = simulate(trace, pairs, ProcessorConfig(value_predictor="perfect"))
        nothing = simulate(trace, pairs, ProcessorConfig(value_predictor="none"))
        assert perfect.cycles <= nothing.cycles

    def test_hit_rate_recorded_for_real_predictors(self, small_traces):
        trace = small_traces["m88ksim"]
        pairs = select_profile_pairs(trace, POLICY)
        stats = simulate(trace, pairs, ProcessorConfig(value_predictor="stride"))
        if stats.spawns:
            assert stats.value_predictions > 0
            assert 0.0 <= stats.value_hit_rate <= 1.0

    def test_priming_helps_or_is_neutral(self, small_traces):
        trace = small_traces["ijpeg"]
        pairs = select_profile_pairs(trace, POLICY)
        primed = simulate(
            trace, pairs, ProcessorConfig(value_predictor="stride")
        )
        cold = simulate(
            trace,
            pairs,
            ProcessorConfig(value_predictor="stride", prime_value_predictor=False),
        )
        assert primed.value_hit_rate >= cold.value_hit_rate - 0.05


class TestOverhead:
    def test_init_overhead_costs_cycles(self, loop_trace):
        pairs = _loop_pairs(loop_trace)
        free = simulate(loop_trace, pairs, ProcessorConfig(init_overhead=0))
        taxed = simulate(loop_trace, pairs, ProcessorConfig(init_overhead=8))
        assert taxed.cycles >= free.cycles

    def test_spawn_cost_and_commit_latency_cost_cycles(self, loop_trace):
        pairs = _loop_pairs(loop_trace)
        free = simulate(loop_trace, pairs, ProcessorConfig())
        taxed = simulate(
            loop_trace, pairs, ProcessorConfig(spawn_cost=3, commit_latency=4)
        )
        assert taxed.cycles > free.cycles


class TestRuntimePolicies:
    def test_min_size_removal_fires_on_tiny_pairs(self, loop_trace):
        head = min(loop_trace.program.loop_heads())
        positions = loop_trace.positions_of(head)
        distance = positions[1] - positions[0]
        pairs = _loop_pairs(loop_trace)
        stats = simulate(
            loop_trace,
            pairs,
            ProcessorConfig(min_thread_size=distance * 3, removal_cycles=10_000),
        )
        assert stats.pairs_removed_min_size >= 1

    def test_reassign_uses_alternatives(self, small_traces):
        trace = small_traces["vortex"]
        pairs = select_profile_pairs(trace, POLICY)
        stats = simulate(
            trace,
            pairs,
            ProcessorConfig(reassign=True, spawn_order_check="none"),
        )
        # fallbacks may legitimately be zero, but the policy must not crash
        assert stats.reassign_fallbacks >= 0

    def test_removal_counts_reported(self, small_traces):
        trace = small_traces["compress"]
        pairs = select_profile_pairs(trace, POLICY)
        stats = simulate(trace, pairs, ProcessorConfig(removal_cycles=20))
        assert stats.pairs_removed_alone >= 0


class TestAccounting:
    def test_summary_keys(self, loop_trace):
        stats = simulate(loop_trace, _loop_pairs(loop_trace), ProcessorConfig())
        summary = stats.summary()
        for key in ("cycles", "ipc", "threads", "spawns", "avg_active_threads"):
            assert key in summary

    def test_processor_object_reusable_results(self, loop_trace):
        proc = ClusteredProcessor(loop_trace, _loop_pairs(loop_trace), ProcessorConfig())
        stats = proc.run()
        assert stats.cycles > 0
