"""Reaching-probability estimators: analytical vs empirical vs hand math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import run_program
from repro.isa import ProgramBuilder, assemble
from repro.profiling import ControlFlowGraph, prune_cfg
from repro.profiling.reaching import (
    EmpiricalReachingProfile,
    MarkovReachingProfile,
    build_reaching_profile,
)


@pytest.fixture(scope="module")
def counted_loop():
    """10-iteration loop: reaching probabilities known in closed form."""
    trace = run_program(
        assemble("li r1 10\nloop: addi r2 r2 3\naddi r1 r1 -1\nbnez r1 loop\nhalt")
    )
    return trace, ControlFlowGraph.from_trace(trace)


class TestEmpirical:
    def test_loop_head_self_probability(self, counted_loop):
        trace, cfg = counted_loop
        profile = EmpiricalReachingProfile(cfg)
        head = cfg.block_of_pc(1)
        # from 10 header executions, 9 reach the header again
        assert profile.prob[head, head] == pytest.approx(0.9)
        assert profile.dist[head, head] == pytest.approx(3.0)

    def test_probabilities_bounded(self, small_traces):
        for trace in small_traces.values():
            cfg = ControlFlowGraph.from_trace(trace)
            profile = EmpiricalReachingProfile(cfg, max_lookahead=512)
            assert np.all(profile.prob >= 0.0)
            assert np.all(profile.prob <= 1.0 + 1e-9)

    def test_distance_at_least_source_block_size(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["compress"])
        profile = EmpiricalReachingProfile(cfg, max_lookahead=512)
        for s in range(len(cfg)):
            for d in range(len(cfg)):
                if profile.prob[s, d] > 0:
                    assert profile.dist[s, d] >= cfg.blocks[s].size

    def test_lookahead_caps_detection(self, counted_loop):
        trace, cfg = counted_loop
        profile = EmpiricalReachingProfile(cfg, max_lookahead=2)
        head = cfg.block_of_pc(1)
        assert profile.prob[head, head] == 0.0


class TestMarkov:
    def test_matches_hand_math_on_counted_loop(self, counted_loop):
        trace, cfg = counted_loop
        profile = MarkovReachingProfile(prune_cfg(cfg, coverage=1.0))
        head = cfg.block_of_pc(1)
        # the pruned chain sees the loop as Markovian with p(back)=0.9
        assert profile.prob[head, head] == pytest.approx(0.9, abs=1e-6)
        assert profile.dist[head, head] == pytest.approx(3.0, abs=1e-6)

    def test_agrees_with_empirical_on_markovian_trace(self, counted_loop):
        trace, cfg = counted_loop
        markov = MarkovReachingProfile(prune_cfg(cfg, coverage=1.0))
        empirical = EmpiricalReachingProfile(cfg)
        for s in range(len(cfg)):
            for d in range(len(cfg)):
                if empirical.prob[s, d] > 0.2:
                    assert markov.prob[s, d] == pytest.approx(
                        empirical.prob[s, d], abs=0.05
                    )

    def test_loose_agreement_on_real_workload(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["vortex"])
        pruned = prune_cfg(cfg)
        markov = MarkovReachingProfile(pruned)
        empirical = EmpiricalReachingProfile(cfg)
        kept = sorted(pruned.kept)
        diffs = [
            abs(markov.prob[s, d] - empirical.prob[s, d])
            for s in kept
            for d in kept
            if empirical.prob[s, d] > 0.9
        ]
        assert diffs and float(np.mean(diffs)) < 0.25

    def test_probabilities_bounded(self, small_traces):
        cfg = ControlFlowGraph.from_trace(small_traces["m88ksim"])
        profile = MarkovReachingProfile(prune_cfg(cfg))
        assert np.all(profile.prob >= -1e-9)
        assert np.all(profile.prob <= 1.0 + 1e-6)


class TestFactory:
    def test_build_by_name(self, counted_loop):
        trace, cfg = counted_loop
        assert isinstance(
            build_reaching_profile(cfg, "empirical"), EmpiricalReachingProfile
        )
        assert isinstance(
            build_reaching_profile(cfg, "markov"), MarkovReachingProfile
        )
        with pytest.raises(ValueError):
            build_reaching_profile(cfg, "tarot")


class TestPropertyRandomLoops:
    @given(
        trips=st.integers(min_value=2, max_value=30),
        body=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_self_pair_statistics_on_random_counted_loops(self, trips, body):
        b = ProgramBuilder()
        i = b.reg("i")
        with b.for_range(i, 0, trips):
            for _ in range(body):
                b.nop()
        b.halt()
        trace = run_program(b.build())
        cfg = ControlFlowGraph.from_trace(trace)
        profile = EmpiricalReachingProfile(cfg)
        head_pc = min(cfg.by_pc.keys() & trace.program.loop_heads())
        head = cfg.block_of_pc(head_pc)
        assert profile.prob[head, head] == pytest.approx(
            (trips - 1) / trips, abs=1e-9
        )
        assert profile.dist[head, head] == pytest.approx(body + 2, abs=1e-9)
