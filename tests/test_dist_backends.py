"""Executor-backend tests: serial/process/async-local equivalence.

The contract under test: whatever order a backend dispatches (or
steals) the points in, the result map is identical to the serial
reference — same keys, same input order, same outcome values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.backend import (
    AsyncLocalBackend,
    ProcessBackend,
    SerialBackend,
    backend_names,
    create_backend,
)
from repro.experiments.engine import ParallelEngine, Point
from repro.experiments.framework import SweepCheckpoint

BACKENDS = ("serial", "process", "async-local")


def _sleep_points(durations, fail_at=()):
    """A heterogeneous sleep grid: one point per duration."""
    return [
        Point(
            key=f"p{i:02d}",
            runner="sleep",
            params={
                "duration": float(d),
                "tag": f"p{i:02d}",
                "fail": "transient" if i in fail_at else None,
            },
        )
        for i, d in enumerate(durations)
    ]


def _run(backend, points, workers=3):
    engine = ParallelEngine(jobs=workers, backend=backend, retries=0)
    results = engine.run(points)
    return {key: (o.ok, o.value) for key, o in results.items()}, engine


def test_backends_equal_on_twelve_point_grid():
    # Twelve points with uneven costs so the stealers actually steal.
    durations = [0.002 * ((i * 7) % 5) for i in range(12)]
    points = _sleep_points(durations, fail_at=(5,))
    reference, _ = _run("serial", points, workers=1)
    for name in ("process", "async-local"):
        outcomes, engine = _run(name, points)
        assert outcomes == reference, name
        # Deterministic input order regardless of completion order.
        assert list(outcomes) == [p.key for p in points], name
        assert engine.backend_name == name


def test_failures_travel_inside_outcomes():
    points = _sleep_points([0.0, 0.0], fail_at=(1,))
    for name in BACKENDS:
        outcomes, _ = _run(name, points)
        assert outcomes["p00"][0] is True
        assert outcomes["p01"][0] is False, name  # failed, not raised


def test_async_local_reports_fleet_dispatch():
    points = _sleep_points([0.001] * 8)
    _, engine = _run("async-local", points, workers=2)
    fleet = engine.fleet
    assert fleet["tasks"] == 8
    assert fleet["completed"] == 8
    assert fleet["lost"] == 0
    assert sum(fleet["dispatched"].values()) == 8


def test_checkpoint_prefilter_skips_completed_points():
    points = _sleep_points([0.001] * 6)
    engine = ParallelEngine(jobs=2, backend="async-local")
    first = engine.run(points[:4])
    assert all(o.ok for o in first.values())


def test_checkpoint_resume_only_runs_todo(tmp_path):
    points = _sleep_points([0.001] * 6)
    checkpoint = SweepCheckpoint(tmp_path / "sweep.json")
    engine = ParallelEngine(jobs=2, backend="async-local")
    engine.run(points[:4], checkpoint=checkpoint)
    resumed = ParallelEngine(jobs=2, backend="async-local")
    outcomes = resumed.run(points, checkpoint=checkpoint)
    assert list(outcomes) == [p.key for p in points]
    # Only the two new points reached the backend.
    assert resumed.fleet["tasks"] == 2


def test_backend_registry():
    assert set(backend_names()) == {
        "serial", "process", "async-local", "remote"
    }
    assert isinstance(create_backend("serial"), SerialBackend)
    assert isinstance(create_backend("process"), ProcessBackend)
    assert isinstance(create_backend("async-local"), AsyncLocalBackend)
    with pytest.raises(KeyError):
        create_backend("carrier-pigeon")
    with pytest.raises(TypeError):
        create_backend("process", workers=3)


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=0.004),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=5, deadline=None)
def test_property_stealing_order_never_changes_results(durations):
    """Random heterogeneous grids: the work-stealing backend's result
    map equals the serial reference bit-for-bit."""
    points = _sleep_points(durations)
    reference, _ = _run("serial", points, workers=1)
    stolen, engine = _run("async-local", points, workers=3)
    assert stolen == reference
    assert list(stolen) == [p.key for p in points]
    assert engine.fleet["lost"] == 0
