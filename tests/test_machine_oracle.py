"""Executor-vs-Python-oracle property tests.

Random straight-line programs over the integer ALU subset are executed
both by :class:`Machine` and by a direct Python evaluation of the same
operations; final register files must agree bit-for-bit (with the 32-bit
wrap applied).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import Machine
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.exec.machine import _wrap32

_MASK = (1 << 32) - 1

#: (opcode, python semantics) for two-source register ops.
_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: (a & _MASK) >> (b & 31),
    Opcode.SLT: lambda a, b: int(a < b),
}

#: (opcode, python semantics) for register+immediate ops.
_IMMOPS = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.XORI: lambda a, imm: a ^ imm,
    Opcode.SHLI: lambda a, imm: a << (imm & 31),
    Opcode.SHRI: lambda a, imm: (a & _MASK) >> (imm & 31),
    Opcode.SLTI: lambda a, imm: int(a < imm),
}

_REGS = st.integers(min_value=1, max_value=10)


@st.composite
def straightline_op(draw):
    if draw(st.booleans()):
        op = draw(st.sampled_from(sorted(_BINOPS, key=lambda o: o.value)))
        return (op, draw(_REGS), draw(_REGS), draw(_REGS), None)
    op = draw(st.sampled_from(sorted(_IMMOPS, key=lambda o: o.value)))
    imm = draw(st.integers(min_value=-1000, max_value=1000))
    return (op, draw(_REGS), draw(_REGS), None, imm)


@given(
    seeds=st.lists(
        st.integers(min_value=-(10**6), max_value=10**6),
        min_size=10,
        max_size=10,
    ),
    ops=st.lists(straightline_op(), min_size=1, max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_machine_matches_python_oracle(seeds, ops):
    instructions = []
    # initialise r1..r10
    for reg, value in enumerate(seeds, start=1):
        instructions.append(Instruction(Opcode.LI, dst=reg, imm=value))
    for op, dst, src_a, src_b, imm in ops:
        if imm is None:
            instructions.append(
                Instruction(op, dst=dst, srcs=(src_a, src_b))
            )
        else:
            instructions.append(Instruction(op, dst=dst, srcs=(src_a,), imm=imm))
    instructions.append(Instruction(Opcode.HALT))
    machine = Machine(Program(instructions=instructions, name="oracle"))
    machine.run()

    regs = [0] * 16
    for reg, value in enumerate(seeds, start=1):
        regs[reg] = _wrap32(value)
    for op, dst, src_a, src_b, imm in ops:
        if imm is None:
            result = _BINOPS[op](regs[src_a], regs[src_b])
        else:
            result = _IMMOPS[op](regs[src_a], imm)
        regs[dst] = _wrap32(result)

    for reg in range(1, 11):
        assert machine.regs[reg] == regs[reg], f"r{reg}"
