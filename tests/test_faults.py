"""Fault-injection subsystem tests: plans, determinism, degradation.

The two load-bearing guarantees:

- a zero-rate plan is *inert* — attaching it changes nothing, down to
  dataclass equality of the full statistics;
- a faulty run still commits exactly the sequential instruction stream
  (graceful degradation changes timing, never results).
"""

import json

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.processor import ClusteredProcessor
from repro.errors import (
    ExecutionError,
    InvariantViolation,
    SimulationError,
    SimulationTimeout,
    WorkloadError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ForwardDelayFault,
    LiveinCorruptionFault,
    SpawnDropFault,
    TUBlackoutFault,
)
from repro.spawning import ProfilePolicyConfig, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)

#: Dense blackout schedule — test traces run a few hundred cycles, so the
#: default 1000-cycle slots would rarely fire inside them.
AGGRESSIVE_BLACKOUT = TUBlackoutFault(rate=0.6, duration=120, slot_cycles=200)


def _pairs(trace):
    return select_profile_pairs(trace, POLICY)


def _run(trace, plan=None, **config_overrides):
    config = ProcessorConfig().with_(**config_overrides)
    injector = None if plan is None else FaultInjector(plan)
    return simulate(trace, _pairs(trace), config, injector)


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TUBlackoutFault(rate=1.5)
        with pytest.raises(ValueError):
            SpawnDropFault(rate=-0.1)
        with pytest.raises(ValueError):
            ForwardDelayFault(rate=0.5, delay=-1)

    def test_is_zero(self):
        assert FaultPlan().is_zero
        assert FaultPlan.uniform(0.0).is_zero
        assert not FaultPlan.uniform(0.1).is_zero
        assert not FaultPlan(spawn_drop=SpawnDropFault(rate=0.2)).is_zero

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            tu_blackout=TUBlackoutFault(rate=0.3, duration=99),
            spawn_drop=SpawnDropFault(rate=0.2, max_retries=5),
            livein_corruption=LiveinCorruptionFault(rate=0.1),
            forward_delay=ForwardDelayFault(rate=0.05, delay=7),
        )
        data = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(data) == plan

    def test_with_seed(self):
        plan = FaultPlan.uniform(0.1, seed=1)
        assert plan.with_seed(2).seed == 2
        assert plan.with_seed(2).tu_blackout == plan.tu_blackout


class TestZeroRateIdentity:
    """An all-zero plan must be indistinguishable from no injector."""

    @pytest.mark.parametrize("name", ["compress", "vortex", "ijpeg", "m88ksim"])
    def test_stats_identical(self, small_traces, name):
        trace = small_traces[name]
        plain = _run(trace, plan=None, collect_timeline=True)
        inert = _run(trace, plan=FaultPlan.uniform(0.0), collect_timeline=True)
        assert plain == inert  # full dataclass equality, timeline included


class TestDeterminism:
    def test_same_seed_bit_identical(self, small_traces):
        trace = small_traces["vortex"]
        plan = FaultPlan(seed=7, tu_blackout=AGGRESSIVE_BLACKOUT,
                         spawn_drop=SpawnDropFault(rate=0.3),
                         livein_corruption=LiveinCorruptionFault(rate=0.3),
                         forward_delay=ForwardDelayFault(rate=0.3))
        a = _run(trace, plan, collect_timeline=True)
        b = _run(trace, plan, collect_timeline=True)
        assert a == b

    def test_different_seeds_diverge(self, small_traces):
        trace = small_traces["vortex"]
        plan = FaultPlan(seed=7, tu_blackout=AGGRESSIVE_BLACKOUT)
        other = plan.with_seed(8)
        # Seeds draw different blackout schedules (astronomically unlikely
        # to coincide at this density).
        inj_a, inj_b = FaultInjector(plan), FaultInjector(other)
        assert any(
            inj_a.blackout_windows(tu) != inj_b.blackout_windows(tu)
            for tu in range(16)
        )


class TestBlackoutDegradation:
    def _stats(self, small_traces, name):
        plan = FaultPlan(seed=11, tu_blackout=AGGRESSIVE_BLACKOUT)
        trace = small_traces[name]
        return trace, _run(trace, plan, collect_timeline=True)

    @pytest.mark.parametrize("name", ["compress", "vortex", "ijpeg", "m88ksim"])
    def test_stream_preserved(self, small_traces, name):
        trace, stats = self._stats(small_traces, name)
        assert stats.instructions == len(trace)
        assert sum(stats.thread_sizes) == len(trace)

    @pytest.mark.parametrize("name", ["compress", "vortex"])
    def test_timeline_partitions_trace(self, small_traces, name):
        trace, stats = self._stats(small_traces, name)
        records = sorted(stats.timeline, key=lambda r: r.start_pos)
        pos = 0
        for record in records:
            assert record.start_pos == pos
            pos += record.size
        assert pos == len(trace)

    def test_faults_actually_fire(self, small_traces):
        _, stats = self._stats(small_traces, "vortex")
        assert stats.tu_blackouts > 0
        assert stats.faults_injected >= stats.tu_blackouts
        assert stats.fault_cycles_lost > 0
        # degradation fired at least once (restart or fold)
        assert stats.threads_degraded > 0


class TestSpawnDrops:
    def test_certain_drop_kills_all_spawns(self, small_traces):
        trace = small_traces["ijpeg"]
        plan = FaultPlan(seed=3, spawn_drop=SpawnDropFault(rate=1.0))
        stats = _run(trace, plan)
        assert stats.spawns == 0
        assert stats.spawns_dropped > 0
        assert stats.threads_committed == 1
        assert sum(stats.thread_sizes) == len(trace)

    def test_partial_drop_retries(self, small_traces):
        trace = small_traces["ijpeg"]
        plan = FaultPlan(seed=3, spawn_drop=SpawnDropFault(rate=0.5))
        stats = _run(trace, plan)
        assert stats.spawns_retried > 0
        assert stats.fault_cycles_lost > 0
        assert sum(stats.thread_sizes) == len(trace)


class TestLiveinCorruption:
    def test_certain_corruption_forces_miss_path(self, small_traces):
        trace = small_traces["ijpeg"]
        plan = FaultPlan(seed=5, livein_corruption=LiveinCorruptionFault(rate=1.0))
        clean = _run(trace)
        stats = _run(trace, plan)
        assert stats.liveins_corrupted > 0
        assert sum(stats.thread_sizes) == len(trace)
        # every corrupted live-in pays synchronise+recovery
        assert stats.cycles >= clean.cycles


class TestForwardDelay:
    def test_delay_fires_on_sync_path(self, small_traces):
        trace = small_traces["ijpeg"]
        plan = FaultPlan(seed=9, forward_delay=ForwardDelayFault(rate=1.0, delay=32))
        # value_predictor="none" routes every live-in through forwarding
        clean = _run(trace, value_predictor="none")
        stats = _run(trace, plan, value_predictor="none")
        assert stats.forward_delays > 0
        assert stats.cycles >= clean.cycles
        assert sum(stats.thread_sizes) == len(trace)


class TestWatchdogs:
    def test_cycle_budget_timeout(self, small_traces):
        trace = small_traces["compress"]
        with pytest.raises(SimulationTimeout) as info:
            _run(trace, cycle_budget=10)
        assert "cycle budget exceeded" in str(info.value)
        assert "budget=10" in str(info.value)

    def test_generous_budget_is_invisible(self, small_traces):
        trace = small_traces["compress"]
        free = _run(trace)
        budgeted = _run(trace, cycle_budget=free.cycles * 10)
        assert free == budgeted

    def test_livelock_detector(self, loop_trace, monkeypatch):
        def stuck(self, thread):
            thread.fetch_cycle += 1  # spins without executing anything

        monkeypatch.setattr(ClusteredProcessor, "_advance", stuck)
        proc = ClusteredProcessor(
            loop_trace, _pairs(loop_trace),
            ProcessorConfig(livelock_threshold=64),
        )
        with pytest.raises(InvariantViolation) as info:
            proc.run()
        assert "livelock" in str(info.value)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(SimulationTimeout, SimulationError)
        assert issubclass(InvariantViolation, SimulationError)
        assert issubclass(WorkloadError, SimulationError)
        assert issubclass(WorkloadError, ExecutionError)
        assert issubclass(SimulationError, RuntimeError)

    def test_context_rendering(self):
        err = SimulationError("stuck", cycle=12, thread=3, skipped=None)
        assert str(err) == "stuck [cycle=12, thread=3]"
        assert SimulationError("plain").args[0] == "plain"
