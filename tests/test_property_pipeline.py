"""Whole-stack property test: random structured programs through the
profile -> selection -> simulation pipeline must preserve the simulator's
global invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.exec import run_program
from repro.isa import Opcode, ProgramBuilder
from repro.isa.builder import ARG_REGS, RV_REG
from repro.profiling import ControlFlowGraph
from repro.spawning import ProfilePolicyConfig, heuristic_pairs, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096, min_distance=8)


@st.composite
def random_program(draw):
    """A random but well-formed program: nested counted loops whose bodies
    mix ALU work, array traffic, data-dependent ifs and optional calls."""
    outer_trips = draw(st.integers(min_value=2, max_value=12))
    inner_trips = draw(st.integers(min_value=0, max_value=8))
    body_ops = draw(st.integers(min_value=1, max_value=6))
    use_call = draw(st.booleans())
    use_if = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=10_000))

    b = ProgramBuilder("fuzz")
    i, j, acc, addr, tmp = (
        b.reg("i"),
        b.reg("j"),
        b.reg("acc"),
        b.reg("addr"),
        b.reg("tmp"),
    )
    base = b.alloc_data((seed * 31 + k * 7) % 997 for k in range(64))
    b.li(acc, seed % 100)
    with b.for_range(i, 0, outer_trips):
        for k in range(body_ops):
            b.addi(acc, acc, k + 1)
            b.andi(acc, acc, 0xFFFF)
        b.li(addr, base)
        b.andi(tmp, acc, 63)
        b.add(addr, addr, tmp)
        b.load(tmp, addr)
        b.add(acc, acc, tmp)
        if use_if:
            with b.if_(Opcode.BNEZ, (tmp,)):
                b.xori(acc, acc, 0x55)
        if inner_trips:
            with b.for_range(j, 0, inner_trips):
                b.add(acc, acc, j)
                b.andi(acc, acc, 0xFFFF)
        if use_call:
            b.mov(ARG_REGS[0], acc)
            b.call("mix")
            b.mov(acc, RV_REG)
        b.li(addr, base)
        b.andi(tmp, acc, 63)
        b.add(addr, addr, tmp)
        b.store(acc, addr)
    b.halt()
    if use_call:
        with b.function("mix"):
            b.shli(RV_REG, ARG_REGS[0], 1)
            b.xori(RV_REG, RV_REG, 0x3C)
            b.andi(RV_REG, RV_REG, 0xFFFF)
    return b.build()


class TestPipelineProperties:
    @given(program=random_program())
    @settings(max_examples=25, deadline=None)
    def test_simulation_invariants_hold(self, program):
        trace = run_program(program, max_steps=100_000)
        pairs = select_profile_pairs(trace, POLICY)
        config = ProcessorConfig(num_thread_units=4)
        stats = simulate(trace, pairs, config)
        assert stats.instructions == len(trace)
        assert sum(stats.thread_sizes) == len(trace)
        assert stats.threads_committed == stats.spawns + 1
        assert 0 < stats.avg_active_threads <= 4
        assert stats.cycles >= len(trace) / (4 * config.issue_width)

    @given(program=random_program())
    @settings(max_examples=15, deadline=None)
    def test_speculation_never_catastrophic_with_perfect_vp(self, program):
        trace = run_program(program, max_steps=100_000)
        base = single_thread_cycles(trace, ProcessorConfig())
        for pairs in (
            select_profile_pairs(trace, POLICY),
            heuristic_pairs(trace),
        ):
            stats = simulate(trace, pairs, ProcessorConfig())
            assert stats.cycles <= base * 1.25

    @given(program=random_program())
    @settings(max_examples=15, deadline=None)
    def test_cfg_tiles_random_traces(self, program):
        trace = run_program(program, max_steps=100_000)
        cfg = ControlFlowGraph.from_trace(trace)
        covered = 0
        for bid, start in cfg.sequence:
            assert start == covered
            covered = start + cfg.blocks[bid].size
        assert covered == len(trace)
