"""Dashboard tests: data payloads, HTTP endpoints, snapshot, attach."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.dashboard import (
    DashboardApp,
    DashboardData,
    parse_prometheus,
    render_page,
    resolve_attach,
    write_snapshot,
)
from repro.dashboard.data import histogram_quantiles
from repro.obs import (
    EventTracer,
    RunManifest,
    TimelineModel,
    events_metrics,
    sim_metrics,
    validate_chrome_trace,
)
from repro.spawning import ProfilePolicyConfig, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


@pytest.fixture(scope="module")
def dash_source(small_traces):
    """One traced run shaped like DashboardData.collect's output."""
    trace = small_traces["compress"]
    pairs = select_profile_pairs(trace, POLICY)
    tracer = EventTracer()
    config = ProcessorConfig(
        num_thread_units=8, value_predictor="stride",
        collect_timeline=True,
    )
    stats = simulate(trace, pairs, config, tracer=tracer)
    labels = {"workload": "compress", "policy": "profile", "vp": "stride"}
    model = TimelineModel.from_stats(
        stats, 8, events=tracer.events, meta={**labels, "tus": 8}
    )
    registry = sim_metrics(stats, **labels)
    events_metrics(tracer.events, registry, **labels)
    return model.chrome_trace(), tracer.events, registry


def make_data(dash_source, tmp_path, **overrides):
    trace, events, registry = dash_source
    RunManifest(
        name="fig8/compress", config={"workload": "compress"},
        seconds=1.5, extra={"note": "point"},
    ).write(tmp_path / "tele")
    (tmp_path / "tele" / "figure8.txt").write_text("art\n")
    kwargs = dict(
        events=events,
        telemetry=[tmp_path / "tele"],
        registry=registry,
        meta={"workload": "compress"},
    )
    kwargs.update(overrides)
    return DashboardData(trace, **kwargs)


def get(url, timeout=10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestPrometheusParsing:
    def test_samples_and_labels(self):
        text = (
            "# HELP repro_jobs_total jobs\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{state="done"} 4\n'
            "repro_up 1\n"
            "garbage line without value\n"
        )
        samples = parse_prometheus(text)
        assert samples == [
            {"name": "repro_jobs_total", "labels": {"state": "done"},
             "value": 4.0},
            {"name": "repro_up", "labels": {}, "value": 1.0},
        ]

    def test_unescapes_label_values(self):
        samples = parse_prometheus(
            'x{path="a\\"b\\\\c"} 2.5\n'
        )
        assert samples[0]["labels"]["path"] == 'a"b\\c'
        assert samples[0]["value"] == 2.5


class TestHistogramQuantiles:
    def test_tiles_per_series(self, dash_source):
        _, _, registry = dash_source
        tiles = histogram_quantiles(registry)
        sizes = [
            t for t in tiles
            if t["name"] == "repro_sim_thread_size_insts"
        ]
        assert len(sizes) == 1
        tile = sizes[0]
        assert tile["labels"]["workload"] == "compress"
        assert tile["count"] > 0
        assert 0 <= tile["p50"] <= tile["p90"] <= tile["p99"]


class TestResolveAttach:
    def test_url_passthrough(self):
        assert resolve_attach("http://10.0.0.1:8642/") == (
            "http://10.0.0.1:8642"
        )

    def test_state_dir_and_endpoint_file(self, tmp_path):
        endpoint = tmp_path / "endpoint.json"
        endpoint.write_text(json.dumps(
            {"host": "127.0.0.1", "port": 8642, "pid": 1}
        ))
        assert resolve_attach(tmp_path) == "http://127.0.0.1:8642"
        assert resolve_attach(endpoint) == "http://127.0.0.1:8642"

    def test_host_port(self):
        assert resolve_attach("localhost:9000") == "http://localhost:9000"

    def test_garbage_raises(self, tmp_path):
        with pytest.raises(ValueError, match="neither"):
            resolve_attach(tmp_path / "nope")
        (tmp_path / "endpoint.json").write_text("not json")
        with pytest.raises(ValueError, match="bad endpoint file"):
            resolve_attach(tmp_path)


class TestPayloads:
    def test_trace_is_schema_valid(self, dash_source, tmp_path):
        data = make_data(dash_source, tmp_path)
        assert data.trace_problems() == []

    def test_events_kind_prefix_and_thread_filter(
        self, dash_source, tmp_path
    ):
        data = make_data(dash_source, tmp_path)
        payload = data.events_payload(kind="thread")
        assert payload["filtered"] > 0
        assert all(
            e["kind"].startswith("thread") for e in payload["events"]
        )
        # Counts and the replay cross-check cover the whole stream.
        assert payload["total"] == len(data.events)
        assert sum(payload["counts"].values()) == payload["total"]
        assert payload["replay"]["threads_committed"] > 0
        one = data.events_payload(thread=0)
        assert all(e["thread"] == 0 for e in one["events"])
        capped = data.events_payload(limit=5)
        assert len(capped["events"]) == 5
        assert capped["filtered"] == capped["total"]

    def test_manifests_payload_lists_dirs_and_files(
        self, dash_source, tmp_path
    ):
        data = make_data(dash_source, tmp_path)
        payload = data.manifests_payload()
        assert len(payload["dirs"]) == 1
        entry = payload["dirs"][0]
        manifest = entry["manifests"]["fig8_compress.manifest"]
        assert manifest["seconds"] == 1.5
        assert [f["name"] for f in entry["files"]] == ["figure8.txt"]

    def test_metrics_payload_local(self, dash_source, tmp_path):
        data = make_data(dash_source, tmp_path)
        payload = data.metrics_payload()
        assert payload["source"] == "local"
        assert "repro_sim_cycles_total" in (
            payload["snapshot"]["metrics"]
        )
        assert payload["quantiles"]

    def test_metrics_payload_attach_unreachable(
        self, dash_source, tmp_path
    ):
        data = make_data(
            dash_source, tmp_path,
            attach_url="http://127.0.0.1:9",  # discard port: refused
        )
        payload = data.metrics_payload()
        assert payload["source"] == "attached"
        assert "error" in payload

    def test_collect_from_trace_file(self, dash_source, tmp_path):
        trace, events, _ = dash_source
        trace_path = tmp_path / "t.json"
        trace_path.write_text(json.dumps(trace))
        events_path = tmp_path / "e.jsonl"
        events_path.write_text(
            "\n".join(json.dumps(e.to_dict()) for e in events)
        )
        data = DashboardData.collect(
            trace_path=str(trace_path),
            events_path=str(events_path),
            telemetry=[str(tmp_path)],
        )
        assert data.trace_problems() == []
        assert len(data.events) == len(events)
        assert data.meta["workload"] == "compress"

    def test_collect_bad_trace_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="cannot load trace"):
            DashboardData.collect(trace_path=str(bad))


class TestHttpEndpoints:
    @pytest.fixture()
    def app(self, dash_source, tmp_path):
        app = DashboardApp(make_data(dash_source, tmp_path), port=0)
        app.start()
        yield app
        app.stop()

    def test_index_serves_live_page(self, app):
        status, body = get(app.url + "/")
        assert status == 200
        assert "repro dashboard" in body
        assert "BOOTSTRAP = null" in body  # live mode fetches the API

    def test_healthz(self, app):
        status, body = get(app.url + "/healthz")
        health = json.loads(body)
        assert status == 200 and health["ok"] is True
        assert health["attached"] is False

    def test_trace_endpoint_is_schema_valid(self, app):
        status, body = get(app.url + "/api/trace")
        assert status == 200
        assert validate_chrome_trace(json.loads(body)) == []

    def test_events_endpoint_filters(self, app):
        status, body = get(
            app.url + "/api/events?kind=predict&limit=10"
        )
        payload = json.loads(body)
        assert status == 200
        assert len(payload["events"]) <= 10
        assert all(
            e["kind"].startswith("predict") for e in payload["events"]
        )

    def test_events_bad_query_is_400(self, app):
        status, body = get(app.url + "/api/events?thread=abc")
        assert status == 400
        assert "integers" in json.loads(body)["error"]

    def test_manifests_and_metrics_endpoints(self, app):
        status, body = get(app.url + "/api/manifests")
        assert status == 200
        assert json.loads(body)["dirs"]
        status, body = get(app.url + "/api/metrics")
        assert status == 200
        assert json.loads(body)["source"] == "local"

    def test_unknown_route_is_404(self, app):
        for path in ("/api/nope", "/etc/passwd", "/api/trace/x"):
            status, body = get(app.url + path)
            assert status == 404
            assert json.loads(body) == {"error": "unknown route"}


class TestSnapshot:
    def test_bundle_files_and_embedded_trace(
        self, dash_source, tmp_path
    ):
        data = make_data(dash_source, tmp_path)
        written = write_snapshot(data, tmp_path / "snap")
        assert [p.name for p in written] == [
            "index.html", "trace.json", "events.json",
            "manifests.json", "metrics.json",
        ]
        html = written[0].read_text()
        assert "__BOOTSTRAP__" not in html
        assert '"meta"' in html  # bootstrap object embedded
        trace = json.loads(written[1].read_text())
        assert validate_chrome_trace(trace) == []

    def test_render_page_escapes_script_close(self):
        html = render_page({"meta": {"x": "</script><b>"}})
        assert "</script><b>" not in html
        assert "<\\/script>" in html


class TestAttach:
    def test_metrics_panel_polls_serve_daemon(
        self, dash_source, tmp_path
    ):
        from repro.serve.server import ServeConfig, ServeDaemon

        daemon = ServeDaemon(ServeConfig(
            state_dir=tmp_path / "state", fsync=False, workers=1,
            mode="thread",
        ))
        daemon.start()
        try:
            data = make_data(
                dash_source, tmp_path,
                attach_url=resolve_attach(daemon.state_dir),
            )
            payload = data.metrics_payload()
            assert payload["source"] == "attached"
            names = {s["name"] for s in payload["samples"]}
            assert any(n.startswith("repro_serve") for n in names)
        finally:
            daemon.stop()
