"""Dataflow critical-path lower bound on the timing model.

The single-threaded run can never finish faster than the longest true-
dependence chain through the trace (registers and memory, one cycle per
hop at minimum) — an independent check on the whole timing model.
"""

from repro.cmt import ProcessorConfig, simulate
from repro.spawning import SpawnPairSet


def _critical_path(trace) -> int:
    """Length (in >=1-cycle hops) of the longest dependence chain."""
    reg_deps = trace.register_deps
    mem_deps = trace.memory_deps
    depth = [0] * len(trace)
    best = 0
    for pos in range(len(trace)):
        d = 0
        for producer in reg_deps[pos]:
            if producer >= 0 and depth[producer] > d:
                d = depth[producer]
        producer = mem_deps[pos]
        if producer >= 0 and depth[producer] > d:
            d = depth[producer]
        depth[pos] = d + 1
        if depth[pos] > best:
            best = depth[pos]
    return best


class TestCriticalPathBound:
    def test_single_thread_respects_dataflow(self, small_traces):
        for name, trace in small_traces.items():
            stats = simulate(
                trace, SpawnPairSet([]), ProcessorConfig().single_threaded()
            )
            assert stats.cycles >= _critical_path(trace), name

    def test_serial_chain_is_tight(self, serial_trace):
        """On a pure dependence chain, the bound should be within the
        latency factor of the measured cycles."""
        stats = simulate(
            serial_trace, SpawnPairSet([]), ProcessorConfig().single_threaded()
        )
        path = _critical_path(serial_trace)
        assert stats.cycles >= path
        # chain of 1-cycle ALU ops: cycles within a small factor of hops
        assert stats.cycles <= path * 6

    def test_multithreaded_respects_memory_dataflow(self, small_traces):
        """Even with perfect register value prediction, memory dataflow is
        never predicted, so the memory-only critical path still bounds the
        clustered runs."""
        from repro.spawning import ProfilePolicyConfig, select_profile_pairs

        for name, trace in small_traces.items():
            mem_deps = trace.memory_deps
            depth = [0] * len(trace)
            best = 0
            for pos in range(len(trace)):
                producer = mem_deps[pos]
                d = depth[producer] if producer >= 0 else 0
                depth[pos] = d + 1
                if depth[pos] > best:
                    best = depth[pos]
            pairs = select_profile_pairs(
                trace, ProfilePolicyConfig(coverage=0.99, max_distance=4096)
            )
            stats = simulate(trace, pairs, ProcessorConfig())
            assert stats.cycles >= best, name
