"""Shape-check report tests."""

from repro.experiments.framework import FigureResult
from repro.experiments.report import ShapeCheck, render_checklist, run_shape_checks


def _fig(figure, benchmarks, series, summary):
    return FigureResult(
        figure=figure,
        title=figure,
        benchmarks=benchmarks,
        series=series,
        summary=summary,
    )


def _synthetic_results(good=True):
    """A figure set engineered to pass (or fail) every check."""
    benches = ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"]
    n = len(benches)
    sel = [30, 20, 10, 2 if good else 90, 15, 5, 40, 25]
    speed = [5, 4, 2, 5, 1.5, 12 if good else 1, 5, 6]
    ratios = [1.5, 0.9, 1.0, 1.1, 0.9, 1.2, 0.95, 1.3] if good else [0.5] * n
    return {
        "figure2": _fig(
            "figure2",
            benches,
            {"total_pairs": [100] * n, "selected_pairs": sel},
            {},
        ),
        "figure3": _fig(
            "figure3", benches, {"speedup": speed}, {"hmean": 4.0 if good else 1.0}
        ),
        "figure8": _fig(
            "figure8", benches, {"profile_over_heuristics": ratios}, {"hmean": 1.1}
        ),
        "figure9a": _fig(
            "figure9a", benches, {}, {"stride_profile": 0.7 if good else 0.1}
        ),
        "figure9b": _fig(
            "figure9b",
            benches,
            {},
            {"perfect_profile": 4.0, "stride_profile": 2.0 if good else 9.0},
        ),
        "figure10b": _fig(
            "figure10b",
            benches,
            {},
            {"distance": 4.0, "independent": 3.0, "predictable": 3.5}
            if good
            else {"distance": 1.0, "independent": 3.0, "predictable": 3.5},
        ),
        "figure11": _fig(
            "figure11", benches, {}, {"profile": 0.9 if good else 0.3}
        ),
        "figure12": _fig(
            "figure12", benches, {}, {"perfect_profile": 2.5 if good else 9.0}
        ),
        "profile_input_sensitivity": _fig(
            "ext", benches, {}, {"transfer": 0.9 if good else 0.1}
        ),
    }


class TestShapeChecks:
    def test_engineered_pass(self):
        checks = run_shape_checks(_synthetic_results(good=True))
        assert all(c.passed for c in checks), [
            (c.claim, c.observed) for c in checks if not c.passed
        ]

    def test_engineered_failures_detected(self):
        checks = run_shape_checks(_synthetic_results(good=False))
        assert any(not c.passed for c in checks)

    def test_missing_figure_is_a_failed_check(self):
        checks = run_shape_checks({})
        assert all(not c.passed for c in checks)
        assert all("error" in c.observed for c in checks)

    def test_render_checklist_format(self):
        checks = [
            ShapeCheck("claim a", True, "x=1"),
            ShapeCheck("claim b", False, "y=2"),
        ]
        text = render_checklist(checks)
        assert "PASS" in text and "DIVERGES" in text
        assert text.count("|") >= 12
