"""Thread-unit resource bookkeeping tests."""

from repro.cmt import ProcessorConfig
from repro.cmt.thread_unit import ThreadUnit
from repro.isa.instructions import FuClass


def _tu(**overrides):
    return ThreadUnit(0, ProcessorConfig().with_(**overrides))


class TestIssueBooking:
    def test_issue_width_enforced(self):
        tu = _tu(issue_width=2)
        cycles = [tu.book_issue(10, FuClass.SIMPLE_INT) for _ in range(5)]
        # two per cycle: 10, 10, 11, 11, 12
        assert sorted(cycles) == [10, 10, 11, 11, 12]

    def test_fu_count_enforced(self):
        tu = _tu()
        # only one integer multiplier per unit (paper Section 4.1)
        first = tu.book_issue(5, FuClass.INT_MUL)
        second = tu.book_issue(5, FuClass.INT_MUL)
        assert first == 5
        assert second == 6

    def test_different_classes_share_issue_width_only(self):
        tu = _tu(issue_width=4)
        a = tu.book_issue(7, FuClass.INT_MUL)
        b = tu.book_issue(7, FuClass.FP_MUL)
        c = tu.book_issue(7, FuClass.FP_DIV)
        d = tu.book_issue(7, FuClass.LDST)
        assert [a, b, c, d] == [7, 7, 7, 7]
        # the fifth op of the cycle spills over regardless of class
        assert tu.book_issue(7, FuClass.SIMPLE_INT) == 8

    def test_booking_never_before_earliest(self):
        tu = _tu()
        assert tu.book_issue(100, FuClass.SIMPLE_INT) >= 100

    def test_reset_bandwidth_tracking(self):
        tu = _tu(issue_width=1)
        tu.book_issue(3, FuClass.SIMPLE_INT)
        tu.reset_bandwidth_tracking()
        assert tu.book_issue(3, FuClass.SIMPLE_INT) == 3


class TestPerUnitState:
    def test_fresh_unit_is_free_at_time_zero(self):
        assert _tu().free_at == 0

    def test_predictor_and_cache_are_per_unit(self):
        config = ProcessorConfig()
        a = ThreadUnit(0, config)
        b = ThreadUnit(1, config)
        a.gshare.update(5, True)
        assert b.gshare.predictions == 0
        a.l1.access(0)
        assert b.l1.accesses == 0


class TestRingBooking:
    """Ring-buffer tracker vs the legacy dict tracker."""

    def test_ring_matches_dict_under_monotone_floors(self):
        import random

        rng = random.Random(2002)
        classes = list(FuClass)
        probes = []
        floor = 0
        for _ in range(400):
            floor += rng.randrange(0, 3)
            probes.append((floor, floor + rng.randrange(0, 6),
                           rng.choice(classes)))
        ring_tu, dict_tu = _tu(), _tu()
        for group_floor, earliest, fu in probes:
            ring_tu.begin_group(group_floor)
            assert ring_tu.book_issue(earliest, fu) == \
                dict_tu.book_issue_legacy(earliest, fu)

    def test_overflow_beyond_window_is_exact(self):
        from repro.cmt.thread_unit import RING_WINDOW

        tu = _tu(issue_width=1)
        far = RING_WINDOW + 50  # beyond the window while base is 0
        assert tu.book_issue(far, FuClass.SIMPLE_INT) == far
        assert tu.book_issue(far, FuClass.SIMPLE_INT) == far + 1
        assert tu._issue_overflow  # spilled entries recorded
        # In-window bookings still work alongside the spill.
        assert tu.book_issue(3, FuClass.SIMPLE_INT) == 3

    def test_overflow_entries_visible_after_window_advance(self):
        from repro.cmt.thread_unit import RING_WINDOW

        tu = _tu(issue_width=1)
        far = RING_WINDOW + 10
        assert tu.book_issue(far, FuClass.SIMPLE_INT) == far
        # Advance the window so ``far`` is now in range: the spilled
        # booking must still count against the cycle.
        tu.begin_group(far)
        assert tu.book_issue(far, FuClass.SIMPLE_INT) == far + 1

    def test_begin_group_never_regresses(self):
        tu = _tu()
        tu.begin_group(100)
        tu.begin_group(40)
        assert tu._ring_base == 100

    def test_reset_clears_ring_state(self):
        tu = _tu(issue_width=1)
        tu.begin_group(50)
        tu.book_issue(50, FuClass.SIMPLE_INT)
        tu.reset_bandwidth_tracking()
        assert tu._ring_base == 0
        assert tu.book_issue(50, FuClass.SIMPLE_INT) == 50

    def test_dict_variant_by_ordinal_matches_legacy(self):
        from repro.isa.instructions import FU_INDEX

        a, b = _tu(issue_width=2), _tu(issue_width=2)
        for cycle in (5, 5, 5, 9):
            assert a.book_issue_idx_dict(cycle, FU_INDEX[FuClass.LDST]) == \
                b.book_issue_legacy(cycle, FuClass.LDST)


class TestTrimBandwidth:
    def test_trim_drops_only_past_entries(self):
        tu = _tu()
        tu.book_issue_legacy(5, FuClass.SIMPLE_INT)
        tu.book_issue_legacy(20, FuClass.SIMPLE_INT)
        removed = tu.trim_bandwidth(10)
        assert removed == 2  # one issue entry + one FU entry at cycle 5
        assert 5 not in tu._issue_used
        assert 20 in tu._issue_used
        # Post-trim bookings at future cycles behave normally.
        assert tu.book_issue_legacy(20, FuClass.SIMPLE_INT) == 20

    def test_trim_covers_overflow_spill(self):
        from repro.cmt.thread_unit import RING_WINDOW

        tu = _tu(issue_width=1)
        far = RING_WINDOW + 5
        tu.book_issue(far, FuClass.SIMPLE_INT)
        assert tu.trim_bandwidth(far + 1) == 2
        assert not tu._issue_overflow and not tu._fu_overflow

    def test_trim_on_empty_unit_is_noop(self):
        assert _tu().trim_bandwidth(1000) == 0
