"""Thread-unit resource bookkeeping tests."""

from repro.cmt import ProcessorConfig
from repro.cmt.thread_unit import ThreadUnit
from repro.isa.instructions import FuClass


def _tu(**overrides):
    return ThreadUnit(0, ProcessorConfig().with_(**overrides))


class TestIssueBooking:
    def test_issue_width_enforced(self):
        tu = _tu(issue_width=2)
        cycles = [tu.book_issue(10, FuClass.SIMPLE_INT) for _ in range(5)]
        # two per cycle: 10, 10, 11, 11, 12
        assert sorted(cycles) == [10, 10, 11, 11, 12]

    def test_fu_count_enforced(self):
        tu = _tu()
        # only one integer multiplier per unit (paper Section 4.1)
        first = tu.book_issue(5, FuClass.INT_MUL)
        second = tu.book_issue(5, FuClass.INT_MUL)
        assert first == 5
        assert second == 6

    def test_different_classes_share_issue_width_only(self):
        tu = _tu(issue_width=4)
        a = tu.book_issue(7, FuClass.INT_MUL)
        b = tu.book_issue(7, FuClass.FP_MUL)
        c = tu.book_issue(7, FuClass.FP_DIV)
        d = tu.book_issue(7, FuClass.LDST)
        assert [a, b, c, d] == [7, 7, 7, 7]
        # the fifth op of the cycle spills over regardless of class
        assert tu.book_issue(7, FuClass.SIMPLE_INT) == 8

    def test_booking_never_before_earliest(self):
        tu = _tu()
        assert tu.book_issue(100, FuClass.SIMPLE_INT) >= 100

    def test_reset_bandwidth_tracking(self):
        tu = _tu(issue_width=1)
        tu.book_issue(3, FuClass.SIMPLE_INT)
        tu.reset_bandwidth_tracking()
        assert tu.book_issue(3, FuClass.SIMPLE_INT) == 3


class TestPerUnitState:
    def test_fresh_unit_is_free_at_time_zero(self):
        assert _tu().free_at == 0

    def test_predictor_and_cache_are_per_unit(self):
        config = ProcessorConfig()
        a = ThreadUnit(0, config)
        b = ThreadUnit(1, config)
        a.gshare.update(5, True)
        assert b.gshare.predictions == 0
        a.l1.access(0)
        assert b.l1.accesses == 0
