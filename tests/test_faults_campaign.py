"""Fault-campaign tests: gates, resume, crash survival, CLI wiring."""

import json

from repro.cli import main
from repro.experiments import SweepCheckpoint
from repro.faults.campaign import (
    CampaignSpec,
    run_campaign,
    run_key,
    workload_seed,
)

#: Two-workload spec small enough for unit tests.
SPEC = CampaignSpec(
    workloads=("compress", "ijpeg"),
    rates=(0.0, 0.05),
    seed=2002,
    scale=0.2,
    timeout=60.0,
    retries=1,
    backoff=0.0,
)


class TestSeeding:
    def test_run_key_stable(self):
        assert run_key("compress", 0.05) == "compress@0.05"
        assert run_key("compress", 0.0) == "compress@0"

    def test_workload_seed_deterministic_and_distinct(self):
        assert workload_seed(2002, "compress") == workload_seed(2002, "compress")
        assert workload_seed(2002, "compress") != workload_seed(2002, "ijpeg")
        assert workload_seed(2002, "compress") != workload_seed(2003, "compress")


class TestCampaign:
    def test_gates_pass_and_counters_fire(self):
        result = run_campaign(SPEC)
        assert result.ok, result.failures()
        # zero-rate runs match the faultless reference exactly
        for workload in SPEC.workloads:
            value = result.outcomes[run_key(workload, 0.0)].value
            assert value["cycles"] == result.reference[workload]["faultless_cycles"]
        # faulty runs injected something somewhere
        total = sum(
            result.outcomes[run_key(w, 0.05)].value["faults_injected"]
            for w in SPEC.workloads
        )
        assert total > 0

    def test_same_seed_reproducible(self):
        a, b = run_campaign(SPEC), run_campaign(SPEC)
        for key in a.outcomes:
            assert a.outcomes[key].value == b.outcomes[key].value

    def test_injected_crash_survived_via_retry(self):
        crash_key = run_key("compress", 0.05)
        result = run_campaign(SPEC, crash_keys=(crash_key,))
        assert result.ok, result.failures()
        assert result.outcomes[crash_key].attempts == 2

    def test_crash_beyond_retry_budget_fails_gate(self):
        spec = CampaignSpec(
            workloads=("compress",), rates=(0.0,), scale=0.2,
            retries=0, backoff=0.0,
        )
        result = run_campaign(spec, crash_keys=(run_key("compress", 0.0),))
        assert not result.ok
        assert any("injected worker crash" in p for p in result.failures())

    def test_resume_from_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.json"
        first = run_campaign(SPEC, checkpoint=SweepCheckpoint(path))
        assert first.resumed == 0

        # drop one run; a re-run must redo exactly that one
        ckpt = SweepCheckpoint(path)
        ckpt.discard(run_key("ijpeg", 0.05))
        second = run_campaign(SPEC, checkpoint=ckpt)
        assert second.ok
        assert second.resumed == len(SPEC.workloads) * len(SPEC.rates) - 1
        for key in first.outcomes:
            assert second.outcomes[key].value == first.outcomes[key].value

    def test_render_mentions_gates(self):
        result = run_campaign(SPEC)
        text = result.render()
        assert "all gates passed" in text
        assert "compress" in text and "ijpeg" in text
        assert "rate 0.05" in text


class TestFaultsCli:
    ARGS = ["faults", "--workloads", "compress", "ijpeg",
            "--rates", "0.05", "--scale", "0.2"]

    def test_exit_zero_and_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "all gates passed" in out
        assert "rate 0" in out and "rate 0.05" in out

    def test_report_file(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        assert main(self.ARGS + ["--report", str(report)]) == 0
        data = json.loads(report.read_text())
        assert data["failures"] == []
        assert "compress@0.05" in data["outcomes"]

    def test_checkpoint_and_crash_survival(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        assert main(self.ARGS + [
            "--checkpoint", str(ckpt),
            "--inject-crash", "compress@0.05",
        ]) == 0
        assert ckpt.exists()
        # second invocation resumes every run from the checkpoint
        capsys.readouterr()
        assert main(self.ARGS + ["--checkpoint", str(ckpt)]) == 0
        assert "resumed 4 runs from checkpoint" in capsys.readouterr().out

    def test_bad_rates_usage_error(self, capsys):
        assert main(["faults", "--rates", "fast"]) == 2


class TestStructuredErrorExit:
    def test_workload_error_exits_3(self, capsys):
        code = main(["trace", "compress", "--scale", "0.1", "--max-steps", "5"])
        assert code == 3
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "did not halt" in err

    def test_cycle_budget_exit_3(self, capsys):
        code = main([
            "simulate", "compress", "--scale", "0.1", "--cycle-budget", "10"
        ])
        assert code == 3
        assert "cycle budget exceeded" in capsys.readouterr().err

    def test_simulate_with_faults_flag(self, capsys):
        assert main([
            "simulate", "ijpeg", "--scale", "0.2",
            "--fault-rate", "0.05", "--fault-seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
