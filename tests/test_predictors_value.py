"""Value-predictor tests, including recurrence properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.value import (
    FCMPredictor,
    LastValuePredictor,
    NeverPredictor,
    PerfectPredictor,
    StridePredictor,
    make_value_predictor,
)

PAIR = (10, 55)


class TestStride:
    def test_cold_table_predicts_nothing(self):
        p = StridePredictor()
        assert p.predict(*PAIR, 3, base=7) is None

    def test_locks_stride_after_two_agreeing_deltas(self):
        p = StridePredictor()
        p.train(*PAIR, 3, base=0, actual=4)
        p.train(*PAIR, 3, base=4, actual=8)
        assert p.predict(*PAIR, 3, base=8) == 12

    def test_single_delta_not_enough(self):
        p = StridePredictor()
        p.train(*PAIR, 3, base=0, actual=4)
        assert p.predict(*PAIR, 3, base=4) is None

    def test_base_anchoring_survives_resets(self):
        """The increment organisation predicts across sequence resets
        because the base always comes from the parent."""
        p = StridePredictor()
        for base in (0, 1, 2, 5, 6, 0, 1):  # resets mid-stream
            p.train(*PAIR, 3, base=base, actual=base + 1)
        assert p.predict(*PAIR, 3, base=100) == 101

    def test_non_integer_values_clear_the_entry(self):
        p = StridePredictor()
        p.train(*PAIR, 3, base=0, actual=4)
        p.train(*PAIR, 3, base=4, actual=8)
        p.train(*PAIR, 3, base=1.5, actual=2.5)
        assert p.predict(*PAIR, 3, base=8) is None

    @given(
        stride=st.integers(min_value=-50, max_value=50),
        start=st.integers(min_value=-1000, max_value=1000),
        steps=st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_arithmetic_progression_learned(self, stride, start, steps):
        p = StridePredictor()
        value = start
        for _ in range(steps):
            p.train(*PAIR, 9, base=value, actual=value + stride)
            value += stride
        assert p.predict(*PAIR, 9, base=value) == value + stride


class TestLastValueCopy:
    def test_predicts_the_parents_value(self):
        p = LastValuePredictor()
        assert p.predict(*PAIR, 3, base=41) == 41

    def test_training_is_a_noop(self):
        p = LastValuePredictor()
        p.train(*PAIR, 3, base=1, actual=99)
        assert p.predict(*PAIR, 3, base=7) == 7


class TestFCM:
    def test_learns_repeating_pattern(self):
        p = FCMPredictor()
        pattern = [3, 1, 4, 1, 5]
        for _ in range(6):
            for v in pattern:
                p.train(*PAIR, 2, base=0, actual=v)
        # after the history ... 1, 5 the next value is 3
        hits = 0
        for expected in pattern:
            if p.predict(*PAIR, 2, base=0) == expected:
                hits += 1
            p.train(*PAIR, 2, base=0, actual=expected)
        assert hits >= 4

    def test_cold_predicts_nothing(self):
        assert FCMPredictor().predict(*PAIR, 1, base=0) is None


class TestBounds:
    def test_perfect_and_never_return_none(self):
        assert PerfectPredictor().predict(*PAIR, 1, base=3) is None
        assert NeverPredictor().predict(*PAIR, 1, base=3) is None

    def test_accounting(self):
        p = StridePredictor()
        p.record(True)
        p.record(False)
        assert p.predictions == 2 and p.hits == 1
        assert p.hit_rate == 0.5

    def test_empty_hit_rate_is_zero(self):
        assert StridePredictor().hit_rate == 0.0


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("perfect", PerfectPredictor),
            ("none", NeverPredictor),
            ("last", LastValuePredictor),
            ("stride", StridePredictor),
            ("fcm", FCMPredictor),
        ],
    )
    def test_factory_names(self, name, cls):
        assert isinstance(make_value_predictor(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_value_predictor("psychic")

    def test_table_sizing(self):
        small = StridePredictor(size_kb=1)
        large = StridePredictor(size_kb=16)
        assert len(large.strides) > len(small.strides)
