"""Property tests for :func:`repro.metrics.weighted_harmonic_mean`.

The weighted harmonic mean is the aggregate the figure summaries report
as ``whmean`` (speed-ups weighted by baseline cycles = the speed-up of
the suite run back to back); these properties pin down its algebra.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import harmonic_mean, weighted_harmonic_mean

#: Positive values in the range figure speed-ups actually inhabit.
values_st = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=1, max_size=12,
)


@st.composite
def values_with_weights(draw):
    values = draw(values_st)
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
            min_size=len(values), max_size=len(values),
        )
    )
    return values, weights


class TestProperties:
    @given(values_st, st.floats(min_value=0.1, max_value=100.0))
    def test_equal_weights_degenerate_to_harmonic_mean(self, values, w):
        assert weighted_harmonic_mean(values, [w] * len(values)) == (
            pytest.approx(harmonic_mean(values), rel=1e-9)
        )

    @given(values_with_weights())
    def test_bounded_by_extremes(self, data):
        values, weights = data
        mean = weighted_harmonic_mean(values, weights)
        assert min(values) <= mean * (1 + 1e-9)
        assert mean <= max(values) * (1 + 1e-9)

    @given(values_with_weights(), st.floats(min_value=0.01, max_value=100.0))
    def test_invariant_under_weight_scaling(self, data, factor):
        values, weights = data
        assert weighted_harmonic_mean(values, weights) == pytest.approx(
            weighted_harmonic_mean(values, [w * factor for w in weights]),
            rel=1e-9,
        )

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.1, max_value=1000.0))
    def test_single_value_is_identity(self, value, weight):
        assert weighted_harmonic_mean([value], [weight]) == (
            pytest.approx(value)
        )

    @given(values_with_weights())
    def test_zero_weight_drops_its_value(self, data):
        values, weights = data
        extended = weighted_harmonic_mean(
            values + [0.01], weights + [0.0]
        )
        assert extended == pytest.approx(
            weighted_harmonic_mean(values, weights), rel=1e-9
        )


class TestKnownValuesAndValidation:
    def test_known_value(self):
        # total time interpretation: baseline 1+3 units of work at
        # speed-ups 2 and 4 -> 4 / (1/2 + 3/4) = 3.2
        assert weighted_harmonic_mean([2, 4], [1, 3]) == pytest.approx(3.2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="2 values but 3 weights"):
            weighted_harmonic_mean([1, 2], [1, 1, 1])

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError, match="positive values"):
            weighted_harmonic_mean([1, 0], [1, 1])
        with pytest.raises(ValueError, match="positive values"):
            weighted_harmonic_mean([1, -2], [1, 1])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            weighted_harmonic_mean([1, 2], [1, -1])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="not all be zero"):
            weighted_harmonic_mean([1, 2], [0, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean([], [])
