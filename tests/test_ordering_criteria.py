"""The CQIP-ordering criteria must rank candidates differently.

A crafted loop gives one spawning point two CQIP candidates: a *near*
block whose downstream code is fully independent of the spawn region, and
a *far* block whose downstream code consumes a value the spawn region
computes.  Criterion (a) (distance) must prefer the far block; criterion
(b) (independence) must prefer the near one.
"""

import pytest

from repro.exec import run_program
from repro.isa import Opcode, ProgramBuilder
from repro.spawning import ProfilePolicyConfig, select_profile_pairs


@pytest.fixture(scope="module")
def crafted():
    b = ProgramBuilder("ordering")
    i, x = b.reg("i"), b.reg("x")
    free1, free2 = b.reg("f1"), b.reg("f2")
    y = b.reg("y")
    b.li(x, 3)
    with b.for_range(i, 0, 60):
        # spawn region: a serial chain computing x (the loop head block)
        for _ in range(6):
            b.mul(x, x, x)
            b.andi(x, x, 255)
        b.jump("near")  # force a block leader
        b.label("near")
        # near CQIP: completely self-contained work
        for k in range(6):
            b.li(free1, k + 1)
            b.addi(free2, free1, 2)
        b.jump("far")
        b.label("far")
        # far CQIP: every instruction consumes x
        b.mov(y, x)
        for _ in range(5):
            b.add(y, y, x)
            b.xor(y, y, x)
        b.jump("wrap")
        b.label("wrap")
        b.nop()
    b.halt()
    trace = run_program(b.build())
    head = min(trace.program.loop_heads())
    near = trace.program.labels["near"]
    far = trace.program.labels["far"]
    return trace, head, near, far


def _rank(pairs, sp, cqip):
    alts = pairs.alternatives(sp)
    for index, pair in enumerate(alts):
        if pair.cqip_pc == cqip:
            return index
    return None


class TestOrderingCriteria:
    def test_both_candidates_selected(self, crafted):
        trace, head, near, far = crafted
        pairs = select_profile_pairs(
            trace,
            ProfilePolicyConfig(coverage=1.0, min_distance=8, max_distance=512,
                                dedupe_mutual_sps=False),
        )
        assert _rank(pairs, head, near) is not None
        assert _rank(pairs, head, far) is not None

    def test_distance_prefers_the_far_cqip(self, crafted):
        trace, head, near, far = crafted
        pairs = select_profile_pairs(
            trace,
            ProfilePolicyConfig(
                coverage=1.0, min_distance=8, max_distance=512,
                ordering="distance", dedupe_mutual_sps=False,
            ),
        )
        assert _rank(pairs, head, far) < _rank(pairs, head, near)

    def test_independence_prefers_the_near_cqip(self, crafted):
        trace, head, near, far = crafted
        pairs = select_profile_pairs(
            trace,
            ProfilePolicyConfig(
                coverage=1.0, min_distance=8, max_distance=512,
                ordering="independent", dedupe_mutual_sps=False,
            ),
        )
        assert _rank(pairs, head, near) < _rank(pairs, head, far)
