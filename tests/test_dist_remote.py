"""Remote-fleet tests: spawned socket workers, equivalence, kill -9.

Each test spawns real ``repro worker`` subprocesses against an
in-process coordinator, so this is the full wire path: hello, steal,
task, result, heartbeat, requeue-on-death.
"""

import os
import signal
import time

import pytest

from repro.dist.coordinator import RemoteBackend
from repro.dist.worker import parse_endpoint
from repro.experiments.engine import ParallelEngine, Point


def _sleep_points(durations):
    return [
        Point(
            key=f"p{i:02d}",
            runner="sleep",
            params={"duration": float(d), "tag": f"p{i:02d}"},
        )
        for i, d in enumerate(durations)
    ]


def test_parse_endpoint():
    assert parse_endpoint("127.0.0.1:7341") == ("127.0.0.1", 7341)
    assert parse_endpoint("::1:80") == ("::1", 80)
    with pytest.raises(ValueError):
        parse_endpoint("no-port")
    with pytest.raises(ValueError):
        parse_endpoint(":80")
    with pytest.raises(ValueError):
        parse_endpoint("host:not-a-number")


def test_remote_fleet_matches_serial():
    points = _sleep_points([0.01 * ((i * 3) % 4) for i in range(8)])
    serial = ParallelEngine(jobs=1).run(points)
    engine = ParallelEngine(jobs=2, backend="remote", workers=2)
    remote = engine.run(points)
    assert list(remote) == list(serial)
    assert {k: (o.ok, o.value) for k, o in remote.items()} == {
        k: (o.ok, o.value) for k, o in serial.items()
    }
    fleet = engine.fleet
    assert fleet["tasks"] == 8
    assert fleet["completed"] == 8
    assert fleet["lost"] == 0
    # Both spawned workers actually participated.
    assert set(fleet["dispatched"]) == {"w0", "w1"}
    assert all(count > 0 for count in fleet["dispatched"].values())


def test_worker_death_requeues_exactly_once():
    # One long point seeded first (granted to one worker) plus short
    # filler for the other.  When the first short point completes we
    # know who ran it — and SIGKILL the OTHER worker, which is mid-way
    # through the long point, guaranteeing a leased-task requeue.
    points = [
        Point(key="long", runner="sleep", params={"duration": 1.5}),
    ] + _sleep_points([0.05] * 6)
    backend = RemoteBackend(heartbeat=0.3, heartbeat_timeout=2.0)
    engine = ParallelEngine(jobs=2, backend=backend, workers=2)
    state = {"killed": None}

    def kill_the_busy_one(key, outcome, resumed):
        if state["killed"] is None and key != "long":
            emitter = engine._worker_ids.get(key)
            victim = "w1" if emitter == "w0" else "w0"
            proc = backend.processes[int(victim[1:])]
            os.kill(proc.pid, signal.SIGKILL)
            state["killed"] = victim

    outcomes = engine.run(points, progress=kill_the_busy_one)
    assert state["killed"] is not None
    assert all(o.ok for o in outcomes.values())
    fleet = engine.fleet
    assert fleet["tasks"] == 7
    assert fleet["completed"] == 7
    assert fleet["lost"] == 0
    assert fleet["requeues"] >= 1
    assert fleet["duplicate_finishes"] == 0
    # The long point was re-run by the surviving worker.
    survivor = "w0" if state["killed"] == "w1" else "w1"
    assert engine._worker_ids["long"] == survivor


def test_fleet_summary_includes_cache_counters():
    points = _sleep_points([0.01] * 4)
    engine = ParallelEngine(jobs=2, backend="remote", workers=2)
    engine.run(points)
    assert "cache" in engine.fleet
    for field in ("pulls", "pushes", "probe_misses", "rejects"):
        assert field in engine.fleet["cache"]


def test_whole_fleet_death_raises():
    from repro.experiments.framework import ResilientOutcome  # noqa: F401

    points = _sleep_points([5.0] * 2)
    backend = RemoteBackend(heartbeat=0.2, heartbeat_timeout=1.0)
    engine = ParallelEngine(jobs=2, backend=backend, workers=2)

    def kill_everyone():
        deadline = time.time() + 10.0
        while not backend.processes and time.time() < deadline:
            time.sleep(0.05)
        time.sleep(0.5)  # let the workers take their leases
        for proc in backend.processes:
            os.kill(proc.pid, signal.SIGKILL)

    import threading

    killer = threading.Thread(target=kill_everyone)
    killer.start()
    try:
        with pytest.raises(Exception) as excinfo:
            engine.run(points)
        assert "fleet" in str(excinfo.value)
    finally:
        killer.join()
