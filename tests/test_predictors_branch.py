"""Branch-predictor tests."""

import pytest

from repro.predictors.branch import (
    BimodalPredictor,
    GsharePredictor,
    make_branch_predictor,
)


class TestGshare:
    def test_learns_always_taken(self):
        p = GsharePredictor(10)
        for _ in range(8):
            p.update(100, True)
        assert p.predict(100) is True

    def test_learns_alternation_through_history(self):
        p = GsharePredictor(10)
        outcomes = [bool(i % 2) for i in range(400)]
        for taken in outcomes:
            p.update(50, taken)
        hits = 0
        for taken in outcomes:
            hits += p.predict(50) == taken
            p.update(50, taken)
        assert hits / len(outcomes) > 0.95

    def test_counters_saturate(self):
        p = GsharePredictor(4)
        for _ in range(100):
            p.update(3, True)
        for counter in p.counters:
            assert 0 <= counter <= 3

    def test_hit_accounting(self):
        p = GsharePredictor(10)
        p.update(1, True)
        p.update(1, True)
        assert p.predictions == 2
        assert 0.0 <= p.hit_rate <= 1.0

    @pytest.mark.parametrize("bad", [0, 21, -3])
    def test_bad_history_bits_rejected(self, bad):
        with pytest.raises(ValueError):
            GsharePredictor(bad)


class TestBimodal:
    def test_ignores_history(self):
        p = BimodalPredictor(10)
        for taken in (True, False, True, False, True, True, True, True):
            p.update(7, taken)
        # a per-pc counter converges on the majority direction
        assert p.predict(7) is True

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(10)
        for _ in range(4):
            p.update(1, True)
            p.update(2, False)
        assert p.predict(1) is True
        assert p.predict(2) is False


class TestFactory:
    def test_makes_both_kinds(self):
        assert isinstance(make_branch_predictor("gshare"), GsharePredictor)
        assert isinstance(make_branch_predictor("bimodal"), BimodalPredictor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_branch_predictor("perceptron")
