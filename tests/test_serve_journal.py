"""Crash-safe WAL + snapshot journal of the serve daemon."""

import json

from repro.serve.journal import JobJournal


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line
    ]


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "submit", "id": "a"})
        journal.append({"event": "finish", "id": "a"})
        journal.close()

        recovery = JobJournal(tmp_path / "j.jsonl").replay()
        assert recovery.snapshot == {}
        assert [r["event"] for r in recovery.records] == [
            "submit", "finish",
        ]
        assert recovery.dropped_tail == 0
        assert recovery.quarantined == []

    def test_missing_files_replay_empty(self, tmp_path):
        recovery = JobJournal(tmp_path / "absent.jsonl").replay()
        assert recovery.snapshot == {}
        assert recovery.records == []

    def test_append_reopens_after_close(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "a"})
        journal.close()
        journal.append({"event": "b"})
        journal.close()
        assert len(_lines(tmp_path / "j.jsonl")) == 2


class TestTruncatedTail:
    def test_partial_final_record_dropped_and_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync=False)
        journal.append({"event": "submit", "id": "a"})
        journal.append({"event": "start", "id": "a"})
        journal.close()
        # kill -9 mid-append: the last record has no trailing newline.
        with open(path, "a") as handle:
            handle.write('{"event": "finish", "id": "a", "resu')

        recovery = JobJournal(path).replay()
        assert [r["event"] for r in recovery.records] == [
            "submit", "start",
        ]
        assert recovery.dropped_tail == 1
        assert recovery.quarantined == []

    def test_complete_final_record_not_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync=False)
        journal.append({"event": "submit", "id": "a"})
        journal.close()

        recovery = JobJournal(path).replay()
        assert recovery.dropped_tail == 0
        assert len(recovery.records) == 1


class TestMidFileCorruption:
    def test_corrupt_middle_keeps_prefix_and_quarantines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event": "submit", "id": "a"}\n'
            "NOT JSON AT ALL\n"
            '{"event": "finish", "id": "a"}\n'
        )

        recovery = JobJournal(path).replay()
        assert [r["event"] for r in recovery.records] == ["submit"]
        assert recovery.dropped_tail == 0
        quarantine = path.with_suffix(path.suffix + ".corrupt")
        assert recovery.quarantined == [quarantine]
        assert quarantine.exists()
        # The original stays in place (copied, not moved) so the live
        # daemon can keep appending after recovery compacts it.
        assert path.exists()

    def test_corrupt_snapshot_quarantined(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.snapshot_path.write_text("{broken json")

        recovery = journal.replay()
        assert recovery.snapshot == {}
        assert recovery.quarantined == [
            journal.snapshot_path.with_suffix(
                journal.snapshot_path.suffix + ".corrupt"
            )
        ]
        assert not journal.snapshot_path.exists()

    def test_non_object_snapshot_quarantined(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.snapshot_path.write_text("[1, 2]")

        recovery = journal.replay()
        assert recovery.snapshot == {}
        assert len(recovery.quarantined) == 1


class TestRotation:
    def test_rotate_persists_snapshot_and_truncates_wal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "submit", "id": "a"})
        journal.rotate({"jobs": {"a": {"state": "done"}}})

        assert journal.path.read_text() == ""
        recovery = journal.replay()
        assert recovery.snapshot == {"jobs": {"a": {"state": "done"}}}
        assert recovery.records == []

    def test_appends_after_rotate_replay_on_top(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.rotate({"jobs": {"a": {"state": "done"}}})
        journal.append({"event": "submit", "id": "b"})
        journal.close()

        recovery = journal.replay()
        assert recovery.snapshot["jobs"]["a"]["state"] == "done"
        assert [r["id"] for r in recovery.records] == ["b"]

    def test_rotate_leaves_no_temp_files(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append({"event": "x"})
        journal.rotate({"jobs": {}})
        leftovers = [
            p for p in tmp_path.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []
