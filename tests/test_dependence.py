"""Pair dependence/predictability profiling tests."""

import pytest

from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.profiling import profile_pair_dependences
from repro.profiling.dependence import _stride_hit_rates


@pytest.fixture(scope="module")
def mixed_loop():
    """Loop whose body has one loop-carried register and independent work."""
    b = ProgramBuilder()
    i, chain, free, addr = b.reg("i"), b.reg("chain"), b.reg("free"), b.reg("a")
    base = b.alloc_data(range(50))
    b.li(chain, 1)
    head_marker = len(b._instructions)
    with b.for_range(i, 0, 40):
        b.mul(chain, chain, chain)  # depends on previous iteration
        b.andi(chain, chain, 255)
        b.li(free, 7)  # independent chunk
        b.addi(free, free, 3)
        b.li(addr, base)
        b.load(free, addr, 5)
    b.halt()
    trace = run_program(b.build())
    head = min(trace.program.loop_heads())
    del head_marker
    return trace, head


class TestPairDependences:
    def test_detects_independent_and_dependent_instructions(self, mixed_loop):
        trace, head = mixed_loop
        profile = profile_pair_dependences(
            trace, head, head, thread_length=8, max_samples=6
        )
        assert profile.samples > 0
        assert 0 < profile.avg_independent < profile.avg_thread_instructions

    def test_counter_livein_is_stride_predictable(self, mixed_loop):
        trace, head = mixed_loop
        profile = profile_pair_dependences(
            trace, head, head, thread_length=8, max_samples=8
        )
        # the loop counter advances by 1 per iteration -> predictable,
        # so predictable-or-independent must dominate plain independent
        assert (
            profile.avg_predictable_or_independent >= profile.avg_independent
        )

    def test_missing_pair_yields_empty_profile(self, mixed_loop):
        trace, head = mixed_loop
        profile = profile_pair_dependences(
            trace, 9999, 9998, thread_length=8
        )
        assert profile.samples == 0
        assert profile.avg_thread_instructions == 0.0


class TestStrideHitRates:
    def test_constant_sequence_fully_predictable(self):
        rates = _stride_hit_rates({5: [7, 7, 7, 7, 7]})
        assert rates[5] == 1.0

    def test_arithmetic_sequence_fully_predictable(self):
        rates = _stride_hit_rates({5: [3, 6, 9, 12, 15]})
        assert rates[5] == 1.0

    def test_random_sequence_poorly_predictable(self):
        rates = _stride_hit_rates({5: [3, 17, 5, 90, 2, 44, 8]})
        assert rates[5] < 0.5

    def test_short_history_falls_back_to_last_value(self):
        assert _stride_hit_rates({1: [4, 4]})[1] == 1.0
        assert _stride_hit_rates({1: [4, 5]})[1] == 0.0

    def test_non_integer_values_skipped(self):
        rates = _stride_hit_rates({2: [1.5, 2.5, 3.5, 9]})
        assert 0.0 <= rates[2] <= 1.0
