"""Parallel-engine tests: serial/parallel equivalence and resume."""

import pytest

from repro.experiments import figures, framework
from repro.experiments.engine import (
    ParallelEngine,
    Point,
    execute_point,
    figure_points,
    run_figure,
)
from repro.experiments.framework import ResilientOutcome, SweepCheckpoint

SCALE = 0.12


def _mini_points(scale=SCALE, workloads=("compress", "li")):
    """A two-workload mini-sweep (the cheapest simulate points)."""
    return [
        Point(
            key=f"mini|{name}",
            runner="simulate",
            params={
                "name": name,
                "policy": "profile",
                "scale": scale,
                "overrides": {},
            },
        )
        for name in workloads
    ]


@pytest.fixture(autouse=True)
def _fresh_memos():
    framework.clear_memos()
    yield
    framework.clear_memos()


class TestPoints:
    def test_figure_points_cover_both_policies(self):
        points = figure_points("figure8", SCALE)
        keys = [p.key for p in points]
        assert len(keys) == len(set(keys))
        policies = {p.params["policy"] for p in points}
        assert policies == {"profile", "heuristics"}

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_points("figure99")

    def test_points_are_picklable(self):
        import pickle

        for point in figure_points("figure8", SCALE):
            assert pickle.loads(pickle.dumps(point)) == point

    def test_execute_point_matches_direct_run(self):
        point = _mini_points()[0]
        payload = execute_point(point)
        stats = framework.run_policy("compress", "profile", scale=SCALE)
        assert payload["cycles"] == stats.cycles
        assert payload["baseline"] == framework.baseline_cycles(
            "compress", scale=SCALE
        )


class TestEquivalence:
    def test_parallel_equals_serial_mini_sweep(self, tmp_path):
        points = _mini_points()
        serial = ParallelEngine(jobs=1, cache_dir=tmp_path / "serial")
        serial_results = serial.run(points)

        framework.clear_memos()
        parallel = ParallelEngine(jobs=2, cache_dir=tmp_path / "parallel")
        parallel_results = parallel.run(points)

        assert list(serial_results) == list(parallel_results)
        for key in serial_results:
            assert serial_results[key].ok and parallel_results[key].ok
            assert serial_results[key].value == parallel_results[key].value

    def test_run_figure_parallel_equals_serial(self, tmp_path):
        serial = run_figure(
            "figure3", SCALE, ParallelEngine(jobs=1, cache_dir=tmp_path / "s")
        )
        framework.clear_memos()
        parallel = run_figure(
            "figure3", SCALE, ParallelEngine(jobs=2, cache_dir=tmp_path / "p")
        )
        assert serial.series == parallel.series
        assert serial.summary == parallel.summary
        assert serial.render() == parallel.render()

    def test_warm_cache_serves_repeat_sweep(self, tmp_path):
        points = _mini_points()
        engine = ParallelEngine(jobs=1, cache_dir=tmp_path)
        first = engine.run(points)
        framework.clear_memos()
        warm = ParallelEngine(jobs=1, cache_dir=tmp_path)
        second = warm.run(points)
        assert warm.cache_hit_rate() == 1.0
        for key in first:
            assert first[key].value == second[key].value

    def test_duplicate_keys_rejected(self):
        point = _mini_points()[0]
        with pytest.raises(ValueError):
            ParallelEngine(jobs=1).run([point, point])


class TestCheckpointResume:
    def test_resume_mid_sweep_under_jobs_4(self, tmp_path):
        points = _mini_points(workloads=("compress", "li", "ijpeg"))
        store = tmp_path / "sweep.ckpt.json"

        # First run completes only one point (simulating a killed sweep).
        first = ParallelEngine(jobs=1, cache_dir=tmp_path / "cache")
        done = first.run(points[:1], checkpoint=SweepCheckpoint(store))
        assert done[points[0].key].ok

        framework.clear_memos()
        seen = []
        resumed_engine = ParallelEngine(jobs=4, cache_dir=tmp_path / "cache")
        results = resumed_engine.run(
            points,
            checkpoint=SweepCheckpoint(store),
            progress=lambda key, outcome, resumed: seen.append((key, resumed)),
        )
        assert list(results) == [p.key for p in points]
        assert all(outcome.ok for outcome in results.values())
        assert (points[0].key, True) in seen  # replayed, not re-run
        assert {key for key, resumed in seen if not resumed} == {
            p.key for p in points[1:]
        }

        # A third run resumes everything.
        framework.clear_memos()
        third = ParallelEngine(jobs=4, cache_dir=tmp_path / "cache")
        replay = third.run(points, checkpoint=SweepCheckpoint(store))
        assert {k: o.value for k, o in replay.items()} == {
            k: o.value for k, o in results.items()
        }

    def test_failed_outcome_round_trips_checkpoint(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "c.json")
        outcome = ResilientOutcome(
            ok=False, value=None, attempts=3,
            error="boom", error_type="RuntimeError",
        )
        store.record("bad", outcome)
        replay = SweepCheckpoint(tmp_path / "c.json").get("bad")
        assert replay == outcome


class TestSeeding:
    def test_seeded_stats_feed_figure_driver(self):
        payload = {
            "cycles": 100,
            "baseline": 400,
            "speedup": 4.0,
            "avg_active_threads": 2.0,
            "avg_thread_size": 10.0,
            "value_hit_rate": 0.9,
        }
        figures.seed_run(
            "compress", "profile", framework.EXPERIMENT_CONFIG, SCALE, payload
        )
        stats = figures.cached_run(
            "compress", "profile", framework.EXPERIMENT_CONFIG, SCALE
        )
        assert stats.cycles == 100
        assert framework.baseline_cycles("compress", scale=SCALE) == 400
