"""Golden-model tests: traced workload results vs Python reference models.

These validate the functional executor and the workload programs together:
the architectural outcome of the traced run must match an independent
Python implementation of the same algorithm on the same input data.
"""

from repro.exec import Machine
from repro.workloads.generators import dataset_seed, pseudo_random_words
from repro.workloads.li_wl import _CELL_WORDS, build_li
from repro.workloads.m88ksim_wl import (
    _GUEST_REGS,
    _encode_guest_program,
    build_m88ksim,
)
from repro.workloads.vortex_wl import _REC_WORDS, build_vortex


def _run_machine(program, max_steps=2_000_000):
    machine = Machine(program)
    machine.run(max_steps=max_steps)
    return machine


class TestLiGolden:
    def test_tree_sum_matches_python_model(self):
        """The first tree_sum call must return the Python-side tree sum."""
        program = build_li(0.1)
        machine = Machine(program)

        # Reconstruct the Python-side tree.  The heap is the builder's
        # first allocation (base 0x1000); the roots array follows it.
        memory = dict(program.initial_memory)
        from repro.workloads.li_wl import _build_tree

        rng_words = pseudo_random_words(
            dataset_seed(0x115B, "train"), 512, 0, 1 << 20
        )
        from repro.workloads.li_wl import _HEAP_WORDS

        cells, idx = [], 0
        for _ in range(6):
            _root, idx = _build_tree(cells, rng_words, idx, 7)
        roots_base = 0x1000 + _HEAP_WORDS

        def py_tree_sum(cell_addr):
            tag = memory[cell_addr]
            if tag == 0:
                return memory[cell_addr + 1]
            return py_tree_sum(memory[cell_addr + 1]) + py_tree_sum(
                memory[cell_addr + 2]
            )

        expected_first = py_tree_sum(memory[roots_base])

        # Run until the first tree_sum return and read RV.
        from repro.isa.builder import RV_REG
        from repro.isa.instructions import Opcode

        entry = program.labels["tree_sum"]
        depth = 0
        started = False
        while True:
            record = machine.step()
            if record.op is Opcode.CALL and record.next_pc == entry:
                depth += 1
                started = True
            elif record.op is Opcode.RET and started:
                depth -= 1
                if depth == 0:
                    break
        assert machine.regs[RV_REG] == expected_first


class TestM88ksimGolden:
    def test_guest_regfile_matches_python_interpreter(self):
        """The guest register file after the run must equal a direct
        Python interpretation of the same guest program."""
        scale = 0.1
        program = build_m88ksim(scale)
        machine = _run_machine(program)

        guest_len = 200
        code = _encode_guest_program(dataset_seed(0x88, "train"), guest_len)
        regs = pseudo_random_words(dataset_seed(0x88F, "train"), _GUEST_REGS, 0, 100)
        gmem = pseudo_random_words(dataset_seed(0x88A, "train"), 64, 0, 1000)
        from repro.workloads.generators import scaled

        n_cycles = scaled(1000, scale)

        def wrap(x):
            return ((x + (1 << 31)) % (1 << 32)) - (1 << 31)

        gpc = 0
        for _ in range(n_cycles):
            word = code[gpc]
            gop, ra, rb = word >> 12, (word >> 6) & 31, word & 63 & 31
            if gop == 0:
                regs[ra] = wrap(regs[ra] + regs[rb])
            elif gop == 1:
                regs[ra] = wrap(regs[ra] - regs[rb] + 1)
            elif gop == 2:
                regs[ra] = gmem[regs[rb] & 63]
            elif gop == 3:
                gmem[regs[rb] & 63] = regs[ra]
            if gop == 4:
                counter = (regs[ra] - 1) & 7
                regs[ra] = counter
                if counter:
                    gpc = max(gpc - 7, 0)
                else:
                    gpc += 1
            else:
                gpc += 1
            if gpc >= guest_len:
                gpc = 0

        # locate the guest register file in machine memory
        regfile_base = None
        initial = pseudo_random_words(dataset_seed(0x88F, "train"), _GUEST_REGS, 0, 100)
        for addr, value in program.initial_memory.items():
            window = [
                program.initial_memory.get(addr + k) for k in range(_GUEST_REGS)
            ]
            if window == initial:
                regfile_base = addr
                break
        assert regfile_base is not None
        final = [machine.memory.get(regfile_base + k, 0) for k in range(_GUEST_REGS)]
        assert final == regs


class TestVortexGolden:
    def test_update_counts_bounded_by_transactions(self):
        """Every committed transaction increments one record's count."""
        from repro.workloads.generators import scaled

        scale = 0.15
        program = build_vortex(scale)
        machine = _run_machine(program)
        n_txns = scaled(260, scale)

        keys = pseudo_random_words(dataset_seed(0x50B, "train"), 128, 1, 1 << 14)
        # find record base by matching the first record [key0, 100, 0, 0]
        rec_base = None
        for addr, value in program.initial_memory.items():
            if (
                value == keys[0]
                and program.initial_memory.get(addr + 1) == 100
                and program.initial_memory.get(addr + 2) == 0
            ):
                rec_base = addr
                break
        assert rec_base is not None
        total_updates = sum(
            machine.memory.get(rec_base + ri * _REC_WORDS + 2, 0)
            for ri in range(128)
        )
        assert 0 < total_updates <= n_txns
