"""Mean-aggregation helpers."""

import pytest

from repro.metrics import arithmetic_mean, geometric_mean, harmonic_mean


class TestHarmonic:
    def test_known_value(self):
        assert harmonic_mean([1, 2, 4]) == pytest.approx(12 / 7)

    def test_constant_sequence(self):
        assert harmonic_mean([5, 5, 5]) == pytest.approx(5)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([0.1, 100]) < arithmetic_mean([0.1, 100])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1, 0])
        with pytest.raises(ValueError):
            harmonic_mean([2, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])


class TestOthers:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2

    def test_geometric(self):
        assert geometric_mean([2, 8]) == pytest.approx(4)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_ordering_of_means(self):
        data = [1.5, 3.0, 7.0]
        assert harmonic_mean(data) <= geometric_mean(data) <= arithmetic_mean(data)
