"""Assembler/disassembler tests, including a round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Opcode, ProgramBuilder, assemble, disassemble
from repro.isa.assembler import AssemblerError


def _signature(program):
    return [
        (inst.op, inst.dst, inst.srcs, inst.imm, inst.target)
        for inst in program
    ]


class TestAssemble:
    def test_labels_resolve_forward_and_backward(self):
        program = assemble(
            "start: li r1 2\nloop: addi r1 r1 -1\nbnez r1 loop\n"
            "beqz r1 done\ndone: halt"
        )
        assert program.labels["loop"] == 1
        assert program[2].target == 1
        assert program[3].target == 4

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("; header\n\nli r1 1 ; trailing\nhalt\n")
        assert len(program) == 2

    def test_store_has_no_destination(self):
        program = assemble("store r2 r1 4\nhalt")
        assert program[0].dst is None
        assert program[0].srcs == (2, 1)

    def test_negative_and_hex_immediates(self):
        program = assemble("addi r1 r1 -5\nandi r2 r2 0xff\nhalt")
        assert program[0].imm == -5
        assert program[1].imm == 255

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1 r2",
            "jump nowhere\nhalt",
            "1bad: halt",
            "li r1 1 2\nhalt",
            "dup: nop\ndup: halt",
        ],
    )
    def test_malformed_input_rejected(self, bad):
        with pytest.raises(AssemblerError):
            assemble(bad)


class TestRoundTrip:
    def test_hand_written_round_trip(self):
        program = assemble(
            "main: li r1 10\nloop: addi r1 r1 -1\ncall f\nbnez r1 loop\nhalt\n"
            "f: load r2 r1 8\nstore r2 r1 9\nret"
        )
        again = assemble(disassemble(program))
        assert _signature(program) == _signature(again)

    @given(
        trips=st.integers(min_value=1, max_value=5),
        imm=st.integers(min_value=-100, max_value=100),
        use_call=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_builder_programs_round_trip(self, trips, imm, use_call):
        b = ProgramBuilder()
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, imm)
        with b.for_range(i, 0, trips):
            b.add(acc, acc, i)
            if use_call:
                b.call("helper")
        b.halt()
        if use_call:
            with b.function("helper"):
                b.addi(acc, acc, 1)
        program = b.build()
        again = assemble(disassemble(program))
        assert _signature(program) == _signature(again)
