"""Structured-event tests: tracer behaviour, JSONL round-trip, and the
replay-vs-counters parity that makes the stream a trustworthy artifact.

The two load-bearing guarantees:

- tracing disabled is *invisible* — a run holding the null tracer is
  bit-identical (full ``SimulationStats.to_dict``) to a run with no
  tracer argument at all, on both simulator cores;
- tracing enabled is *exact* — :func:`repro.obs.replay_counters` over
  the stream reproduces the headline counters, fault counters included.
"""

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ForwardDelayFault,
    LiveinCorruptionFault,
    SpawnDropFault,
    TUBlackoutFault,
)
from repro.obs import (
    BULK_KINDS,
    EVENT_KINDS,
    EventTracer,
    NULL_TRACER,
    NullTracer,
    SimEvent,
    events_from_jsonl,
    replay_counters,
)
from repro.obs.events import (
    EV_SPAWN_RETRY,
    EV_THREAD_COMMIT,
    EV_THREAD_SPAWN,
    EV_THREAD_START,
)
from repro.spawning import ProfilePolicyConfig, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)

#: Dense fault plan for short test traces (the default blackout slots
#: are longer than the whole run); exercises every fault counter.
FAULTY_PLAN = FaultPlan(
    seed=7,
    tu_blackout=TUBlackoutFault(rate=0.6, duration=120, slot_cycles=200),
    spawn_drop=SpawnDropFault(rate=0.5),
    livein_corruption=LiveinCorruptionFault(rate=0.5),
    forward_delay=ForwardDelayFault(rate=0.5, delay=8),
)


def _pairs(trace):
    return select_profile_pairs(trace, POLICY)


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit("thread.spawn", 10, tu=1, thread=2, pc=0x40)
        assert tracer.events == []

    def test_shared_instance(self):
        assert NULL_TRACER.enabled is False
        assert len(NULL_TRACER.events) == 0


class TestEventTracer:
    def test_records_in_order(self):
        tracer = EventTracer()
        tracer.emit(EV_THREAD_START, 0, tu=0, thread=0)
        tracer.emit(EV_THREAD_SPAWN, 5, tu=1, thread=1, sp=0x10)
        assert len(tracer) == 2
        assert tracer.events[0].kind == EV_THREAD_START
        assert tracer.events[1].attrs["sp"] == 0x10

    def test_unknown_kind_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown event kinds"):
            EventTracer(kinds=["thread.spawn", "thread.teleport"])

    def test_kind_filter_drops_at_emission(self):
        tracer = EventTracer(kinds=[EV_THREAD_SPAWN])
        tracer.emit(EV_THREAD_SPAWN, 1)
        tracer.emit(EV_THREAD_COMMIT, 2)
        assert tracer.counts() == {EV_THREAD_SPAWN: 1}

    def test_counts_and_select(self):
        tracer = EventTracer()
        tracer.emit(EV_THREAD_SPAWN, 1, thread=1)
        tracer.emit(EV_THREAD_SPAWN, 2, thread=2)
        tracer.emit(EV_THREAD_COMMIT, 3, thread=1)
        assert tracer.counts() == {EV_THREAD_SPAWN: 2, EV_THREAD_COMMIT: 1}
        spawns = tracer.select(EV_THREAD_SPAWN)
        assert [e.thread for e in spawns] == [1, 2]

    def test_jsonl_round_trip(self):
        tracer = EventTracer()
        tracer.emit(EV_THREAD_SPAWN, 4, tu=2, thread=1, sp=64, cqip=96)
        tracer.emit(EV_SPAWN_RETRY, 9, tu=3, retries=2)
        restored = events_from_jsonl(tracer.to_jsonl())
        assert restored == tracer.events

    def test_jsonl_tolerates_blank_lines(self):
        tracer = EventTracer()
        tracer.emit(EV_THREAD_COMMIT, 7, thread=0)
        text = "\n" + tracer.to_jsonl() + "\n\n"
        assert events_from_jsonl(text) == tracer.events

    def test_taxonomy_is_closed(self):
        assert BULK_KINDS < EVENT_KINDS
        assert all("." in kind for kind in EVENT_KINDS)


class TestSimEvent:
    def test_defaults_and_dict_view(self):
        event = SimEvent("thread.squash", 12)
        assert event.tu == -1 and event.thread == -1
        view = event.to_dict()
        assert view == {
            "kind": "thread.squash", "cycle": 12, "tu": -1, "thread": -1,
            "attrs": {},
        }


def _assert_replay_matches(stats, tracer):
    replay = replay_counters(tracer.events)
    assert replay["spawns"] == stats.spawns
    assert replay["threads_committed"] == stats.threads_committed
    assert replay["threads_degraded"] == stats.threads_degraded
    assert replay["spawns_dropped"] == stats.spawns_dropped
    assert replay["spawns_retried"] == stats.spawns_retried
    assert replay["tu_blackouts"] == stats.tu_blackouts
    assert replay["control_misspeculations"] == stats.control_misspeculations
    assert replay["liveins_corrupted"] == stats.liveins_corrupted
    assert replay["forward_delays"] == stats.forward_delays
    assert replay["predict_hits"] == stats.value_hits
    assert replay["predict_misses"] == (
        stats.value_predictions - stats.value_hits
    )


class TestReplayParity:
    """The round-trip contract: events replay to the exact counters."""

    def test_faultless_run(self, small_traces):
        trace = small_traces["compress"]
        tracer = EventTracer()
        stats = simulate(
            trace, _pairs(trace),
            ProcessorConfig(value_predictor="stride"), tracer=tracer,
        )
        assert stats.spawns > 0 and len(tracer) > 0
        _assert_replay_matches(stats, tracer)

    def test_faulty_run(self, small_traces):
        trace = small_traces["ijpeg"]
        tracer = EventTracer()
        # Realistic predictor: the perfect oracle emits predict.hit for
        # free register-file copies it does not count as predictions.
        stats = simulate(
            trace, _pairs(trace),
            ProcessorConfig(value_predictor="stride"),
            FaultInjector(FAULTY_PLAN), tracer=tracer,
        )
        assert stats.faults_injected > 0
        _assert_replay_matches(stats, tracer)

    def test_jsonl_preserves_replay(self, small_traces):
        trace = small_traces["vortex"]
        tracer = EventTracer()
        stats = simulate(trace, _pairs(trace), ProcessorConfig(),
                         tracer=tracer)
        restored = events_from_jsonl(tracer.to_jsonl())
        assert replay_counters(restored) == replay_counters(tracer.events)
        assert replay_counters(restored)["spawns"] == stats.spawns


class TestDisabledIsInvisible:
    """Tracing off must be bit-identical to no tracing at all."""

    @pytest.mark.parametrize("core", ["columnar", "legacy"])
    def test_stats_bit_identical(self, small_traces, core):
        trace = small_traces["m88ksim"]
        pairs = _pairs(trace)
        config = ProcessorConfig(collect_timeline=True).with_(sim_core=core)
        plain = simulate(trace, pairs, config)
        nulled = simulate(trace, pairs, config, tracer=NullTracer())
        traced = simulate(trace, pairs, config, tracer=EventTracer())
        assert plain.to_dict() == nulled.to_dict()
        assert plain.to_dict() == traced.to_dict()
