"""Static memory-dependence analysis: intervals, induction, risk reports."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import (
    TOP,
    DependenceAnalysis,
    Interval,
    LiveInClass,
    analyze_pairs,
    continuation_pc_ranges,
    rank_pairs,
    region_pc_ranges,
)
from repro.analysis.cfg import StaticCFG
from repro.analysis.lint import HIGH_SQUASH_RISK_THRESHOLD, lint_program
from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    heuristic_pairs,
    select_profile_pairs,
)


# ----------------------------------------------------------------------
# Interval arithmetic.
# ----------------------------------------------------------------------

_bounded = st.tuples(
    st.integers(-5000, 5000), st.integers(0, 5000)
).map(lambda t: Interval(float(t[0]), float(t[0] + t[1])))


def test_interval_basics():
    iv = Interval(2.0, 9.0)
    assert iv.is_bounded and not iv.is_top
    assert TOP.is_top and not TOP.is_bounded
    assert iv.contains(2) and iv.contains(9) and not iv.contains(10)
    assert iv.shift(3) == Interval(5.0, 12.0)
    assert iv.hull(Interval(-1.0, 4.0)) == Interval(-1.0, 9.0)
    assert iv.overlaps(Interval(9.0, 20.0))
    assert not iv.overlaps(Interval(10.0, 20.0))


@settings(max_examples=200, deadline=None)
@given(a=_bounded, b=_bounded, offset=st.integers(-1000, 1000))
def test_interval_ops_sound(a, b, offset):
    hull = a.hull(b)
    assert hull.contains(a.lo) and hull.contains(a.hi)
    assert hull.contains(b.lo) and hull.contains(b.hi)
    shifted = a.shift(offset)
    assert shifted.contains(a.lo + offset) and shifted.contains(a.hi + offset)
    # overlap is symmetric and agrees with a concrete witness search.
    assert a.overlaps(b) == b.overlaps(a)
    assert a.overlaps(b) == (max(a.lo, b.lo) <= min(a.hi, b.hi))
    assert TOP.overlaps(a) and TOP.contains(a.lo)


# ----------------------------------------------------------------------
# Induction bounds and live-in classification on the shared fixtures.
# ----------------------------------------------------------------------


def _loop_head_report(trace):
    analysis = DependenceAnalysis(trace.program)
    heads = sorted(trace.program.loop_heads())
    assert len(heads) == 1
    return analysis, analysis.analyze_pair(heads[0], heads[0])


def test_loop_fixture_induction_and_may_raw(loop_trace):
    analysis, report = _loop_head_report(loop_trace)
    classes = dict(report.live_in_classes)
    # The only live-in the body clobbers is the counter, and it is a
    # recognised induction variable -> a stride predictor covers it.
    assert set(classes.values()) == {LiveInClass.INDUCTION}
    assert report.recommended_predictor == "stride"
    assert not report.memory_carried_live_ins()
    # One store and one load alias (same base+i address both ways).
    assert len(report.store_pcs) == 1 and len(report.load_pcs) == 1
    assert report.may_raw == {(report.store_pcs[0], report.load_pcs[0])}
    assert report.likely_raw == report.may_raw

    # The widened address interval is tight: i in [0, 64] (exit value
    # included), so the load address spans exactly [base, base + 64].
    program = loop_trace.program
    load_pc = report.load_pcs[0]
    addr = analysis.use_interval(load_pc, program[load_pc].srcs[0])
    assert addr.is_bounded
    assert addr.hi - addr.lo == 64


def test_serial_fixture_is_not_stride_friendly(serial_trace):
    _, report = _loop_head_report(serial_trace)
    classes = dict(report.live_in_classes)
    # x is chained through a mul (non-affine), so it is beyond AFFINE but
    # never touches memory.
    assert LiveInClass.OTHER in classes.values()
    assert report.recommended_predictor == "fcm"
    assert not report.memory_carried_live_ins()


def test_disjoint_arrays_have_empty_may_raw():
    b = ProgramBuilder("noalias")
    i = b.reg("i")
    addr = b.reg("addr")
    addr2 = b.reg("addr2")
    val = b.reg("val")
    src = b.alloc_data([1] * 32)
    b.alloc_data([0] * 80)  # padding absorbs the widening slack
    dst = b.alloc_data([2] * 32)
    with b.for_range(i, 0, 32):
        b.li(addr, src)
        b.add(addr, addr, i)
        b.li(val, 5)
        b.store(val, addr)
        b.li(addr2, dst)
        b.add(addr2, addr2, i)
        b.load(val, addr2)
    b.halt()
    program = b.build()
    analysis = DependenceAnalysis(program)
    head = sorted(program.loop_heads())[0]
    report = analysis.analyze_pair(head, head)
    assert report.store_pcs and report.load_pcs
    assert report.may_raw == frozenset()
    assert report.risk_score < HIGH_SQUASH_RISK_THRESHOLD


def test_region_and_continuation_cover_the_loop(loop_trace):
    cfg = StaticCFG(loop_trace.program)
    head = sorted(loop_trace.program.loop_heads())[0]
    region = region_pc_ranges(cfg, head, head)
    continuation = continuation_pc_ranges(cfg, head)
    region_pcs = {pc for s, e in region for pc in range(s, e)}
    continuation_pcs = {pc for s, e in continuation for pc in range(s, e)}
    # The loop body (store included) is in the region; the continuation
    # re-enters the loop, so the body is reachable there too.
    store_pcs = {
        pc
        for pc in range(len(loop_trace.program))
        if loop_trace.program[pc].op is Opcode.STORE
    }
    assert store_pcs <= region_pcs
    assert store_pcs <= continuation_pcs


def test_analyze_pair_rejects_out_of_range(loop_trace):
    analysis = DependenceAnalysis(loop_trace.program)
    with pytest.raises(ValueError):
        analysis.analyze_pair(0, 10_000)


def test_report_to_dict_round_trip(loop_trace):
    _, report = _loop_head_report(loop_trace)
    payload = report.to_dict()
    assert payload["sp_pc"] == report.sp_pc
    assert payload["recommended_predictor"] == "stride"
    assert all(
        label in LiveInClass.__members__ or True
        for label in payload["live_in_classes"].values()
    )
    assert isinstance(report.format(), str) and "risk=" in report.format()


# ----------------------------------------------------------------------
# Hypothesis soundness: generated loops never violate the static oracle.
# ----------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    start=st.integers(0, 6),
    count=st.integers(2, 20),
    bump=st.integers(1, 7),
)
def test_generated_loop_dependences_within_may_set(start, count, bump):
    from repro.analysis.sanitizer import sanitize_run
    from repro.cmt import ProcessorConfig

    b = ProgramBuilder("genloop")
    i = b.reg("i")
    addr = b.reg("addr")
    val = b.reg("val")
    base = b.alloc_data([3] * 64)
    with b.for_range(i, start, start + count):
        b.li(addr, base)
        b.add(addr, addr, i)
        b.load(val, addr)
        b.addi(val, val, bump)
        b.store(val, addr)
    b.halt()
    trace = run_program(b.build())
    pairs = heuristic_pairs(trace, HeuristicConfig())
    config = ProcessorConfig(num_thread_units=4, value_predictor="stride")
    _, report = sanitize_run(trace, pairs, config)
    assert report.ok, report.format()


# ----------------------------------------------------------------------
# dep_rank wiring: off is bit-identical, on only rescores.
# ----------------------------------------------------------------------


def test_dep_rank_off_is_bit_identical(loop_trace):
    base = select_profile_pairs(loop_trace, ProfilePolicyConfig())
    off = select_profile_pairs(
        loop_trace, ProfilePolicyConfig(dep_rank=False)
    )
    assert base.all_pairs() == off.all_pairs()
    assert base.candidates_evaluated == off.candidates_evaluated

    hbase = heuristic_pairs(loop_trace, HeuristicConfig())
    hoff = heuristic_pairs(loop_trace, HeuristicConfig(dep_rank=False))
    assert hbase.all_pairs() == hoff.all_pairs()


def test_dep_rank_on_preserves_membership(loop_trace):
    base = select_profile_pairs(loop_trace, ProfilePolicyConfig())
    ranked = select_profile_pairs(
        loop_trace, ProfilePolicyConfig(dep_rank=True)
    )
    assert {p.key() for p in ranked.all_pairs()} == {
        p.key() for p in base.all_pairs()
    }
    assert ranked.candidates_evaluated == base.candidates_evaluated
    by_key = {p.key(): p for p in base.all_pairs()}
    for pair in ranked.all_pairs():
        assert pair.score <= by_key[pair.key()].score


def test_rank_pairs_divides_by_risk(loop_trace):
    pairs = heuristic_pairs(loop_trace, HeuristicConfig())
    reports = analyze_pairs(loop_trace.program, pairs)
    ranked = rank_pairs(loop_trace.program, pairs)
    assert len(ranked.all_pairs()) == len(pairs.all_pairs())
    for before, after in zip(pairs.all_pairs(), ranked.all_pairs()):
        report = reports.get(before.key())
        if report is None:
            assert after.score == before.score
        else:
            expected = before.score / (1.0 + report.risk_score)
            assert after.score == pytest.approx(expected)


# ----------------------------------------------------------------------
# Lint rules.
# ----------------------------------------------------------------------


def _pointer_chase_program(suppress=()):
    b = ProgramBuilder("chaser")
    i = b.reg("i")
    ptr = b.reg("ptr")
    val = b.reg("val")
    base = b.alloc_data(list(range(64)))
    b.li(ptr, base)
    with b.for_range(i, 0, 32):
        b.load(val, ptr)
        b.mul(val, val, val)
        b.store(val, ptr)
        b.load(ptr, ptr, 1)
        b.andi(ptr, ptr, 63)
        b.addi(ptr, ptr, base)
    for rule, reason in suppress:
        b.lint_suppress(rule, reason)
    b.halt()
    return b.build()


def test_memory_carried_lint_rule_fires():
    report = lint_program(_pointer_chase_program())
    rules = {d.rule for d in report.diagnostics}
    assert "memory-carried-live-in-without-realistic-vp" in rules
    diag = next(
        d
        for d in report.diagnostics
        if d.rule == "memory-carried-live-in-without-realistic-vp"
    )
    assert "sync" in diag.message


def test_lint_rule_suppression_is_counted():
    program = _pointer_chase_program(
        suppress=[
            (
                "memory-carried-live-in-without-realistic-vp",
                "pointer chase is intentional here",
            ),
            ("high-squash-risk-pair", "ditto"),
        ]
    )
    report = lint_program(program)
    rules = {d.rule for d in report.diagnostics}
    assert "memory-carried-live-in-without-realistic-vp" not in rules
    assert "high-squash-risk-pair" not in rules
    assert report.suppressed >= 1


def test_lint_clean_fixture_has_no_new_rule_findings(loop_trace):
    report = lint_program(loop_trace.program)
    rules = {d.rule for d in report.diagnostics}
    assert "high-squash-risk-pair" not in rules
    assert "memory-carried-live-in-without-realistic-vp" not in rules
