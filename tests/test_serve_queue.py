"""Journaled priority queue: admission, dedup, shedding, recovery."""

import pytest

from repro.serve.jobs import JobState, job_digest
from repro.serve.journal import JobJournal
from repro.serve.queue import AdmissionError, JobQueue


def make_queue(tmp_path, **kwargs):
    journal = JobJournal(tmp_path / "journal.jsonl", fsync=False)
    kwargs.setdefault("max_queued", 8)
    queue = JobQueue(journal, **kwargs)
    queue.recover()
    return queue


def sleep_params(tag):
    return {"duration": 0.01, "tag": tag}


class TestSubmitClaim:
    def test_submit_then_claim_fifo(self, tmp_path):
        queue = make_queue(tmp_path)
        job_a, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "accepted"
        assert job_a.state is JobState.QUEUED
        assert job_a.id == job_digest("sleep", sleep_params("a"))
        queue.submit("sleep", sleep_params("b"))

        first = queue.claim(timeout=0)
        assert first.id == job_a.id
        assert first.state is JobState.RUNNING
        assert first.attempts == 1

    def test_priority_lanes_claim_high_first(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("low"), priority="low")
        queue.submit("sleep", sleep_params("norm"), priority="normal")
        high, _ = queue.submit("sleep", sleep_params("hi"),
                               priority="high")

        assert queue.claim(timeout=0).id == high.id

    def test_unknown_runner_and_priority_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(KeyError):
            queue.submit("nope", {})
        with pytest.raises(ValueError):
            queue.submit("sleep", {}, priority="urgent")

    def test_finish_commits_result(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.finish(job, {"slept": 0.01}, seconds=0.5)
        assert job.state is JobState.DONE
        assert job.result == {"slept": 0.01}
        assert queue.pending() == 0


class TestDedup:
    def test_identical_submission_coalesces(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = queue.submit("sleep", sleep_params("a"))
        dup, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "dedup"
        assert dup is job
        assert queue.depth() == 1

    def test_done_job_dedups_instantly(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.finish(job, {"ok": True})

        dup, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "dedup"
        assert dup.state is JobState.DONE

    def test_failed_job_requeues_on_resubmit(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.fail(job, error="boom", error_type="RuntimeError")

        again, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "accepted"
        assert again.state is JobState.QUEUED
        assert again.attempts == 0
        assert again.error is None

    def test_quarantined_job_never_requeues(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.fail(job, error="invariant", error_type="InvariantViolation",
                   quarantine=True)

        again, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "dedup"
        assert again.state is JobState.QUARANTINED

    def test_cache_probe_serves_instantly(self, tmp_path):
        payload = {"cycles": 42}
        queue = make_queue(
            tmp_path,
            cache_probe=lambda job: payload,
        )
        job, outcome = queue.submit("sleep", sleep_params("a"))
        assert outcome == "cached"
        assert job.state is JobState.DONE
        assert job.cached and job.result == payload
        assert queue.depth() == 0


class TestAdmissionControl:
    def test_bounded_queue_rejects_when_full(self, tmp_path):
        queue = make_queue(tmp_path, max_queued=2, shed_ratio=1.0)
        queue.submit("sleep", sleep_params("a"))
        queue.submit("sleep", sleep_params("b"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("sleep", sleep_params("c"))
        assert excinfo.value.reason == "full"

    def test_low_priority_shed_under_pressure(self, tmp_path):
        queue = make_queue(tmp_path, max_queued=4, shed_ratio=0.5)
        queue.submit("sleep", sleep_params("a"))
        queue.submit("sleep", sleep_params("b"))
        # Depth 2 of 4 >= shed threshold: low is refused, normal is not.
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("sleep", sleep_params("c"), priority="low")
        assert excinfo.value.reason == "shedding"
        queue.submit("sleep", sleep_params("d"), priority="normal")

    def test_high_priority_sheds_queued_low_job(self, tmp_path):
        queue = make_queue(tmp_path, max_queued=2, shed_ratio=0.5)
        low, _ = queue.submit("sleep", sleep_params("low"),
                              priority="low")
        queue.submit("sleep", sleep_params("norm"))

        high, outcome = queue.submit("sleep", sleep_params("hi"),
                                     priority="high")
        assert outcome == "accepted"
        assert low.state is JobState.SHED
        assert queue.claim(timeout=0).id == high.id

    def test_draining_queue_rejects_everything(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.drain()
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("sleep", sleep_params("a"))
        assert excinfo.value.reason == "draining"


class TestCancel:
    def test_cancel_queued_is_terminal(self, tmp_path):
        queue = make_queue(tmp_path)
        job, _ = queue.submit("sleep", sleep_params("a"))
        assert queue.cancel(job.id) == "cancelled"
        assert job.state is JobState.CANCELLED
        assert queue.claim(timeout=0) is None

    def test_cancel_running_sets_flag(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        assert queue.cancel(job.id) == "cancelling"
        assert job.cancel_requested
        assert job.state is JobState.RUNNING

    def test_cancel_terminal_and_unknown(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.finish(job, {})
        assert queue.cancel(job.id) == "terminal"
        assert queue.cancel("no-such-job") == "unknown"


class TestRecovery:
    def test_queued_and_running_jobs_requeue_after_crash(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("done"))
        done = queue.claim(timeout=0)
        queue.finish(done, {"ok": True}, seconds=0.1)
        queue.submit("sleep", sleep_params("running"))
        queue.claim(timeout=0)  # running at "crash"
        queue.submit("sleep", sleep_params("queued"))
        # Simulate kill -9: no drain, no rotate; just reopen the WAL.
        queue.journal.close()

        reborn = JobQueue(
            JobJournal(tmp_path / "journal.jsonl", fsync=False)
        )
        report = reborn.recover()
        assert report.jobs == 3
        assert report.requeued == 2
        assert report.finished == 1
        assert report.duplicate_finishes == 0
        survivor = reborn.get(done.id)
        assert survivor.state is JobState.DONE
        assert survivor.result == {"ok": True}
        # Requeued jobs run again exactly once, attempts reset.
        claimed = {reborn.claim(timeout=0).id for _ in range(2)}
        assert claimed == {
            job_digest("sleep", sleep_params("running")),
            job_digest("sleep", sleep_params("queued")),
        }

    def test_recovery_honours_pre_crash_cancel(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        job = queue.claim(timeout=0)
        queue.cancel(job.id)  # running: flag only, journaled
        queue.journal.close()

        reborn = JobQueue(
            JobJournal(tmp_path / "journal.jsonl", fsync=False)
        )
        report = reborn.recover()
        assert report.requeued == 0
        assert reborn.get(job.id).state is JobState.CANCELLED

    def test_recovery_compacts_journal(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        queue.journal.close()

        journal = JobJournal(tmp_path / "journal.jsonl", fsync=False)
        JobQueue(journal).recover()
        assert journal.path.read_text() == ""
        assert journal.snapshot_path.exists()

    def test_recovery_survives_truncated_wal_tail(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit("sleep", sleep_params("a"))
        queue.journal.close()
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write('{"event": "finish", "id": "a", "resu')

        reborn = JobQueue(
            JobJournal(tmp_path / "journal.jsonl", fsync=False)
        )
        report = reborn.recover()
        assert report.dropped_tail == 1
        assert report.requeued == 1  # the submit survived intact

    def test_auto_rotation_bounds_wal_growth(self, tmp_path):
        queue = make_queue(tmp_path, rotate_every=16)
        for index in range(16):
            job, _ = queue.submit("sleep", sleep_params(f"j{index}"))
            queue.cancel(job.id)
        lines = [
            line
            for line in queue.journal.path.read_text().splitlines()
            if line
        ]
        assert len(lines) < 16  # rotated at least once along the way
