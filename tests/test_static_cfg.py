"""Static CFG construction, dominators, loops, and the static/dynamic
consistency property over the whole workload suite."""

import pytest

from repro.analysis import (
    EdgeKind,
    StaticCFG,
    dominator_tree,
    natural_loops,
    postdominator_tree,
)
from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.profiling.cfg import ControlFlowGraph
from repro.workloads import build_workload, workload_names


def _straightline_program():
    b = ProgramBuilder("straight")
    r = b.reg("r")
    b.li(r, 1)
    b.addi(r, r, 2)
    b.halt()
    return b.build()


def _diamond_program():
    """if/else diamond followed by a join and halt."""
    b = ProgramBuilder("diamond")
    x = b.reg("x")
    y = b.reg("y")
    b.li(x, 5)
    b.if_else(
        Opcode.BEQZ,
        (x,),
        lambda: b.li(y, 1),
        lambda: b.li(y, 2),
    )
    b.addi(y, y, 1)
    b.halt()
    return b.build()


def _loop_program():
    b = ProgramBuilder("loop")
    i = b.reg("i")
    acc = b.reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 10):
        b.add(acc, acc, i)
    b.halt()
    return b.build()


def _call_program():
    b = ProgramBuilder("calls")
    x = b.reg("x")
    b.li(x, 3)
    b.call("double")
    b.call("double")
    b.halt()
    with b.function("double"):
        b.add(x, x, x)
    return b.build()


class TestBlockStructure:
    def test_straightline_is_one_block(self):
        cfg = StaticCFG(_straightline_program())
        assert len(cfg) == 1
        assert cfg.blocks[0].start_pc == 0
        assert cfg.blocks[0].size == 3
        assert cfg.successors(0) == []

    def test_blocks_partition_the_program(self):
        for name in ("diamond", "loop", "calls"):
            program = {
                "diamond": _diamond_program,
                "loop": _loop_program,
                "calls": _call_program,
            }[name]()
            cfg = StaticCFG(program)
            covered = []
            for block in cfg.blocks:
                covered.extend(range(block.start_pc, block.end_pc))
            assert covered == list(range(len(program)))

    def test_diamond_edges(self):
        program = _diamond_program()
        cfg = StaticCFG(program)
        entry = cfg.blocks[cfg.entry]
        kinds = {kind for _dst, kind in cfg.succs[entry.bid]}
        assert kinds == {EdgeKind.TAKEN, EdgeKind.FALLTHROUGH}
        # The join block has two predecessors (then-arm jump, else-arm).
        join_pc = program.labels[
            [l for l in program.labels if l.startswith(".Lend")][0]
        ]
        join = cfg.by_pc[join_pc]
        assert len(cfg.predecessors(join)) == 2

    def test_block_containing_mid_block_pc(self):
        cfg = StaticCFG(_straightline_program())
        assert cfg.block_containing(1).bid == 0
        with pytest.raises(ValueError):
            cfg.block_containing(99)

    def test_loop_has_back_edge(self):
        program = _loop_program()
        cfg = StaticCFG(program)
        heads = program.loop_heads()
        assert heads
        head_bid = cfg.by_pc[next(iter(heads))]
        # Some block branches back to the head.
        assert any(
            head_bid in cfg.successors(b.bid)
            and b.start_pc >= cfg.blocks[head_bid].start_pc
            for b in cfg.blocks
        )

    def test_call_and_return_edges(self):
        program = _call_program()
        cfg = StaticCFG(program)
        entry_pc = program.labels["double"]
        callee = cfg.by_pc[entry_pc]
        call_edges = [
            (src, dst)
            for src, edges in cfg.succs.items()
            for dst, kind in edges
            if kind is EdgeKind.CALL
        ]
        assert all(dst == callee for _src, dst in call_edges)
        assert len(call_edges) == 2
        ret_edges = [
            (src, dst)
            for src, edges in cfg.succs.items()
            for dst, kind in edges
            if kind is EdgeKind.RETURN
        ]
        # One ret, two continuations.
        assert len(ret_edges) == 2
        assert cfg.function_rets[entry_pc]

    def test_everything_reachable_in_call_program(self):
        cfg = StaticCFG(_call_program())
        assert cfg.reachable_blocks() == {b.bid for b in cfg.blocks}

    def test_invalid_target_recorded_not_fatal(self):
        program = Program(
            instructions=[
                Instruction(Opcode.JUMP, target=99),
                Instruction(Opcode.HALT),
            ],
            name="bad",
        )
        cfg = StaticCFG(program)
        assert cfg.invalid_targets == [0]

    def test_fallthrough_off_end_recorded(self):
        program = Program(
            instructions=[Instruction(Opcode.NOP), Instruction(Opcode.NOP)],
            name="noend",
        )
        cfg = StaticCFG(program)
        assert cfg.blocks[-1].bid in cfg.falls_off_end


class TestDistances:
    def test_straightline_distance(self):
        cfg = StaticCFG(_straightline_program())
        assert cfg.shortest_distance(0, 2) == 2.0

    def test_unreachable_returns_none(self):
        cfg = StaticCFG(_straightline_program())
        # Backwards in a straight line: no path.
        assert cfg.shortest_distance(2, 0) is None

    def test_loop_self_distance_is_cycle_length(self):
        program = _loop_program()
        cfg = StaticCFG(program)
        head = next(iter(program.loop_heads()))
        dist = cfg.shortest_distance(head, head)
        # The loop body is head..backward-branch inclusive.
        branch_pc = program.backward_branch_pcs()[0]
        assert dist == branch_pc - head + 1

    def test_distance_through_call(self):
        program = _call_program()
        cfg = StaticCFG(program)
        # From entry to halt must pass through the callee twice.
        halt_pc = next(
            pc for pc, i in enumerate(program) if i.op is Opcode.HALT
        )
        dist = cfg.shortest_distance(0, halt_pc)
        assert dist is not None
        assert dist > halt_pc  # longer than the straight-line text distance


class TestDominators:
    def test_diamond_dominance(self):
        cfg = StaticCFG(_diamond_program())
        dom = dominator_tree(cfg)
        entry = cfg.entry
        for block in cfg.blocks:
            assert dom.dominates(entry, block.bid)
        # Neither arm dominates the join.
        arms = cfg.successors(entry)
        join_candidates = [
            b.bid
            for b in cfg.blocks
            if len(cfg.predecessors(b.bid)) == 2
        ]
        assert join_candidates
        join = join_candidates[0]
        for arm in arms:
            assert not dom.dominates(arm, join)

    def test_postdominators_diamond(self):
        cfg = StaticCFG(_diamond_program())
        pdom = postdominator_tree(cfg)
        join = [
            b.bid for b in cfg.blocks if len(cfg.predecessors(b.bid)) == 2
        ][0]
        assert pdom.dominates(join, cfg.entry)

    def test_natural_loops_found(self):
        program = _loop_program()
        cfg = StaticCFG(program)
        loops = natural_loops(cfg)
        assert len(loops) == 1
        head_pc = next(iter(program.loop_heads()))
        assert cfg.blocks[loops[0].head].start_pc == head_pc
        assert loops[0].head in loops[0].body

    def test_straightline_has_no_loops(self):
        assert natural_loops(StaticCFG(_straightline_program())) == []


class TestStaticDynamicConsistency:
    """Property: the static CFG refines the dynamic (trace) CFG.

    Every leader the profiler discovers dynamically must be a static
    leader, and the static block starting there can only be shorter (the
    static analysis also splits at never-executed branch targets).
    """

    @pytest.mark.parametrize("name", workload_names())
    def test_dynamic_leaders_are_static_leaders(self, name):
        program = build_workload(name, 0.2)
        trace = run_program(program)
        dyn = ControlFlowGraph.from_trace(trace)
        static = StaticCFG(program)
        static_leaders = set(static.leader_pcs())
        for block in dyn.blocks:
            assert block.start_pc in static_leaders, (
                f"{name}: dynamic leader pc {block.start_pc} is not a "
                "static leader"
            )
            sblock = static.block_containing(block.start_pc)
            assert sblock.start_pc == block.start_pc
            assert sblock.size <= block.size, (
                f"{name}: static block at pc {block.start_pc} longer than "
                "its dynamic counterpart"
            )
