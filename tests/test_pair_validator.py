"""Spawning-pair validator: adversarial pair tables must be caught
statically, and policy-produced tables must pass."""

import pytest

from repro.analysis import (
    PairValidationConfig,
    Severity,
    filter_statically_valid,
    lint_program,
    validate_pairs,
)
from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.spawning import (
    HeuristicConfig,
    PairKind,
    ProfilePolicyConfig,
    SpawnPair,
    SpawnPairSet,
    heuristic_pairs,
    select_profile_pairs,
)
from repro.workloads import build_workload, load_trace


def _pair(sp, cqip, dist=64.0):
    return SpawnPair(sp, cqip, PairKind.PROFILE, 0.99, dist, dist)


def _findings(report, rule):
    return [f for f in report if f.diagnostic.rule == rule]


@pytest.fixture(scope="module")
def loop_program():
    b = ProgramBuilder("vloop")
    i = b.reg("i")
    acc = b.reg("acc")
    b.li(acc, 0)
    with b.for_range(i, 0, 32):
        b.add(acc, acc, i)
        b.mul(acc, acc, acc)
        b.andi(acc, acc, 1023)
    b.store(acc, i)
    b.halt()
    return b.build()


class TestAdversarialPairs:
    def test_mid_instruction_pc_rejected(self, loop_program):
        report = validate_pairs(
            loop_program, SpawnPairSet([_pair(2.5, 4)])
        )
        assert _findings(report, "mid-instruction-pc")
        assert report.errors()

    def test_out_of_range_pcs_rejected(self, loop_program):
        n = len(loop_program)
        report = validate_pairs(
            loop_program, SpawnPairSet([_pair(0, n + 10), _pair(-3, 1)])
        )
        assert len(_findings(report, "pc-out-of-range")) == 2
        assert len(report.invalid_pairs()) == 2

    def test_unreachable_cqip_rejected(self, loop_program):
        # Straight-line region: pc 1 can never reach pc 0 again.
        report = validate_pairs(loop_program, SpawnPairSet([_pair(1, 0)]))
        assert _findings(report, "cqip-unreachable")
        assert not report.is_valid(_pair(1, 0))

    def test_self_pair_outside_loop_rejected(self, loop_program):
        halt_pc = len(loop_program) - 1
        report = validate_pairs(
            loop_program, SpawnPairSet([_pair(halt_pc, halt_pc)])
        )
        assert _findings(report, "cqip-unreachable")

    def test_self_pair_on_loop_head_accepted(self, loop_program):
        head = next(iter(loop_program.loop_heads()))
        report = validate_pairs(
            loop_program, SpawnPairSet([_pair(head, head)])
        )
        assert report.is_valid(_pair(head, head))

    def test_clobbered_live_ins_flagged(self, loop_program):
        # Spawning the next iteration at the loop head: the accumulator
        # and counter are rewritten every iteration, so both must be
        # flagged as prediction-dependent live-ins.
        head = next(iter(loop_program.loop_heads()))
        report = validate_pairs(
            loop_program, SpawnPairSet([_pair(head, head)])
        )
        clobbered = _findings(report, "live-in-clobbered")
        assert clobbered
        assert clobbered[0].diagnostic.severity is Severity.WARNING

    def test_independent_region_not_flagged(self):
        b = ProgramBuilder("indep")
        x, y, a = b.reg("x"), b.reg("y"), b.reg("a")
        b.li(y, 5)       # pc 0: the future thread's live-in value
        b.li(a, 0x40)    # pc 1: the future thread's base address
        b.li(x, 1)       # pc 2: SP; region writes only x
        b.addi(x, x, 1)  # pc 3
        b.store(y, a)    # pc 4: CQIP reads y and a — neither clobbered
        b.halt()
        program = b.build()
        report = validate_pairs(program, SpawnPairSet([_pair(2, 4)]))
        assert not _findings(report, "live-in-clobbered")
        assert report.is_valid(_pair(2, 4))

    def test_short_static_distance_warns(self, loop_program):
        report = validate_pairs(
            loop_program,
            SpawnPairSet([_pair(0, 1)]),
            PairValidationConfig(min_static_distance=8.0),
        )
        assert _findings(report, "thread-too-short")
        # Warning only: the pair survives filtering.
        assert report.is_valid(_pair(0, 1))


class TestFiltering:
    def test_filter_drops_only_error_pairs(self, loop_program):
        head = next(iter(loop_program.loop_heads()))
        good = _pair(head, head)
        bad = _pair(0, len(loop_program) + 5)
        filtered = filter_statically_valid(
            loop_program, SpawnPairSet([good, bad])
        )
        kept = {p.key() for p in filtered.all_pairs()}
        assert good.key() in kept
        assert bad.key() not in kept

    def test_filter_is_noop_on_valid_set(self, loop_program):
        head = next(iter(loop_program.loop_heads()))
        pairs = SpawnPairSet([_pair(head, head)], candidates_evaluated=7)
        filtered = filter_statically_valid(loop_program, pairs)
        assert filtered is pairs  # unchanged object, counters preserved


class TestPolicyIntegration:
    """The built-in policies only propose statically-valid pairs, so the
    validator defaults must not change their output."""

    def test_profile_pairs_unchanged_by_validation(self):
        trace = load_trace("compress", 0.2)
        with_val = select_profile_pairs(
            trace, ProfilePolicyConfig(static_validate=True)
        )
        without = select_profile_pairs(
            trace, ProfilePolicyConfig(static_validate=False)
        )
        assert {p.key() for p in with_val.all_pairs()} == {
            p.key() for p in without.all_pairs()
        }

    def test_heuristic_pairs_unchanged_by_validation(self):
        trace = load_trace("vortex", 0.2)
        with_val = heuristic_pairs(
            trace, HeuristicConfig(static_validate=True)
        )
        without = heuristic_pairs(
            trace, HeuristicConfig(static_validate=False)
        )
        assert {p.key() for p in with_val.all_pairs()} == {
            p.key() for p in without.all_pairs()
        }

    @pytest.mark.parametrize("name", ("compress", "ijpeg", "vortex"))
    def test_policy_pairs_have_no_static_errors(self, name):
        trace = load_trace(name, 0.2)
        pairs = select_profile_pairs(trace)
        report = validate_pairs(trace.program, pairs)
        assert report.errors() == []


class TestWorkloadLintClean:
    """The shipped suite must stay lint-clean at error severity."""

    @pytest.mark.parametrize(
        "name",
        ("go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"),
    )
    def test_workload_has_no_lint_errors(self, name):
        report = lint_program(build_workload(name, 0.2))
        assert report.errors == []
        assert report.warnings == []
