"""Metrics-registry tests: metric types, exposition, snapshots, collectors."""

import json

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.experiments.framework import ResilientOutcome
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    MetricsSnapshot,
    SNAPSHOT_SCHEMA_VERSION,
    cache_metrics,
    events_metrics,
    outcome_metrics,
    sim_metrics,
)
from repro.obs.registry import Counter, Gauge, Histogram
from repro.spawning import ProfilePolicyConfig, select_profile_pairs


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_samples_are_independent(self):
        counter = Counter("repro_test_total")
        counter.inc(2, workload="gcc")
        counter.inc(3, workload="li")
        assert counter.value(workload="gcc") == 2
        assert counter.value(workload="li") == 3
        assert counter.value(workload="perl") == 0

    def test_only_goes_up(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("repro_test_total").inc(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("repro_test_total").inc(1, **{"bad-label": "x"})


class TestGauge:
    def test_set_inc_and_negative_values(self):
        gauge = Gauge("repro_test_depth")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == 7


class TestHistogram:
    def test_count_sum_and_buckets(self):
        hist = Histogram("repro_test_size", buckets=(1, 4, 16))
        for value in (1, 3, 5, 100):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == 109
        lines = hist.expose()
        assert 'repro_test_size_bucket{le="1"} 1' in lines
        assert 'repro_test_size_bucket{le="4"} 2' in lines
        assert 'repro_test_size_bucket{le="16"} 3' in lines
        assert 'repro_test_size_bucket{le="+Inf"} 4' in lines
        assert "repro_test_size_sum 109" in lines
        assert "repro_test_size_count 4" in lines

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("repro_test_size", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_test_size", buckets=(1, 1, 2))

    def test_quantile_interpolates_over_buckets(self):
        hist = Histogram("repro_test_size", buckets=(1, 4, 16))
        for value in (1, 3, 5, 100):
            hist.observe(value)
        # rank 2 of 4 lands exactly at the top of the (1, 4] bucket.
        assert hist.quantile(0.5) == pytest.approx(4.0)
        # q=0 sits at the lower edge of the first occupied bucket.
        assert hist.quantile(0.0) == pytest.approx(0.0)
        # The overflow observation (100) clamps to the last bound.
        assert hist.quantile(1.0) == pytest.approx(16.0)

    def test_quantile_empty_series_is_none(self):
        hist = Histogram("repro_test_size", buckets=(1, 4))
        assert hist.quantile(0.5) is None
        hist.observe(2, workload="gcc")
        assert hist.quantile(0.5) is None  # unlabelled still empty
        assert hist.quantile(0.5, workload="li") is None

    def test_quantile_single_bucket(self):
        hist = Histogram("repro_test_size", buckets=(10,))
        hist.observe(5)
        hist.observe(5)
        # Half the mass -> halfway through the only bucket [0, 10].
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_respects_labels(self):
        hist = Histogram("repro_test_size", buckets=(2, 8))
        hist.observe(1, workload="gcc")
        hist.observe(7, workload="li")
        assert hist.quantile(1.0, workload="gcc") == pytest.approx(2.0)
        assert hist.quantile(1.0, workload="li") == pytest.approx(8.0)

    def test_quantile_rejects_out_of_range(self):
        hist = Histogram("repro_test_size", buckets=(1,))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(1.5)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help")
        second = registry.counter("repro_test_total")
        assert first is second
        assert "repro_test_total" in registry

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total")

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "Things counted").inc(
            3, workload="gcc"
        )
        registry.gauge("repro_test_rate").set(0.5)
        text = registry.to_prometheus()
        assert "# HELP repro_test_total Things counted" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{workload="gcc"} 3' in text
        assert "repro_test_rate 0.5" in text
        assert text.endswith("\n")

    def test_jsonl_export_parses(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(2, workload="li")
        rows = [json.loads(line) for line in registry.to_jsonl().splitlines()]
        assert rows == [{
            "name": "repro_test_total", "type": "counter",
            "labels": {"workload": "li"}, "value": 2,
        }]


class TestSnapshot:
    def _registry(self, value):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(value, workload="gcc")
        return registry

    def test_schema_version_and_round_trip(self):
        snapshot = self._registry(3).snapshot()
        data = snapshot.to_dict()
        assert data["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        restored = MetricsSnapshot.from_dict(
            json.loads(json.dumps(data))
        )
        assert restored.flatten() == snapshot.flatten()

    def test_flatten_keys_carry_labels(self):
        flat = self._registry(3).snapshot().flatten()
        assert flat == {'repro_test_total{workload="gcc"}': 3}

    def test_diff_reports_deltas(self):
        before = self._registry(3).snapshot()
        after = self._registry(5).snapshot()
        changes = before.diff(after)
        assert len(changes) == 1
        assert changes[0]["before"] == 3
        assert changes[0]["after"] == 5
        assert changes[0]["delta"] == 2

    def test_diff_of_identical_snapshots_is_empty(self):
        snapshot = self._registry(3).snapshot()
        assert snapshot.diff(self._registry(3).snapshot()) == []

    def test_diff_marks_one_sided_samples(self):
        before = self._registry(3).snapshot()
        other = MetricsRegistry()
        other.counter("repro_other_total").inc(1)
        changes = before.diff(other.snapshot())
        keys = {c["key"]: c for c in changes}
        gone = keys['repro_test_total{workload="gcc"}']
        assert gone["after"] is None and "delta" not in gone
        new = keys["repro_other_total"]
        assert new["before"] is None


class TestCollectors:
    @pytest.fixture(scope="class")
    def traced_run(self, small_traces):
        trace = small_traces["compress"]
        pairs = select_profile_pairs(
            trace, ProfilePolicyConfig(coverage=0.99, max_distance=4096)
        )
        tracer = EventTracer()
        stats = simulate(
            trace, pairs, ProcessorConfig(value_predictor="stride"),
            tracer=tracer,
        )
        return stats, tracer

    def test_sim_metrics_mirror_stats(self, traced_run):
        stats, _ = traced_run
        registry = sim_metrics(stats, workload="compress")
        flat = registry.snapshot().flatten()
        assert flat['repro_sim_cycles_total{workload="compress"}'] == (
            stats.cycles
        )
        assert flat['repro_sim_spawns_total{workload="compress"}'] == (
            stats.spawns
        )
        sizes = registry.histogram("repro_sim_thread_size_insts")
        assert sizes.count(workload="compress") == len(stats.thread_sizes)
        assert sizes.sum(workload="compress") == stats.instructions

    def test_events_metrics_mirror_counts(self, traced_run):
        _, tracer = traced_run
        registry = events_metrics(tracer.events)
        counter = registry.counter("repro_events_total")
        for kind, count in tracer.counts().items():
            assert counter.value(kind=kind) == count

    def test_cache_metrics_from_dict(self):
        registry = cache_metrics(
            {"memory_hits": 6, "disk_hits": 2, "misses": 2, "puts": 4}
        )
        flat = registry.snapshot().flatten()
        assert flat["repro_cache_memory_hits_total"] == 6
        assert flat["repro_cache_hit_rate"] == 0.8

    def test_outcome_metrics_counts_statuses(self):
        outcomes = {
            "a": ResilientOutcome(ok=True, value=1, attempts=1, seconds=0.2),
            "b": ResilientOutcome(ok=True, value=2, attempts=3, seconds=0.1),
            "c": ResilientOutcome(ok=False, error="boom", attempts=2),
        }
        registry = outcome_metrics(outcomes)
        points = registry.counter("repro_engine_points_total")
        assert points.value(status="ok") == 2
        assert points.value(status="failed") == 1
        retries = registry.counter("repro_engine_retry_attempts_total")
        assert retries.value() == 3  # (3-1) + (2-1)
        seconds = registry.histogram("repro_engine_point_seconds")
        assert seconds.count() == 3
        assert seconds.sum() == pytest.approx(0.3)
