"""CLI smoke and behaviour tests."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["trace", "quake"])


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("go", "compress", "vortex"):
            assert name in out

    def test_trace_stats(self, capsys):
        assert main(["trace", "compress", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "dynamic length" in out
        assert "loop heads" in out

    def test_disasm_is_assembly(self, capsys):
        assert main(["disasm", "compress", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "halt" in out and "load" in out

    def test_pairs_and_save(self, capsys, tmp_path):
        path = tmp_path / "pairs.json"
        assert main([
            "pairs", "compress", "--scale", "0.1", "--save", str(path)
        ]) == 0
        out = capsys.readouterr().out
        assert "spawning points" in out
        assert path.exists()

    def test_simulate_reports_speedup(self, capsys):
        assert main(["simulate", "compress", "--scale", "0.1", "--tus", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "cycles" in out

    def test_simulate_from_saved_pairs(self, capsys, tmp_path):
        path = tmp_path / "pairs.json"
        main(["pairs", "compress", "--scale", "0.1", "--save", str(path)])
        capsys.readouterr()
        assert main([
            "simulate", "compress", "--scale", "0.1", "--load", str(path)
        ]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_simulate_heuristics_policy(self, capsys):
        assert main([
            "simulate", "compress", "--scale", "0.1",
            "--policy", "heuristics", "--vp", "stride",
        ]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_timeline_renders_gantt(self, capsys):
        assert main([
            "timeline", "compress", "--scale", "0.1", "--tus", "4",
            "--width", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "TU00" in out and "=" in out

    def test_lint_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "compress", "--scale", "0.1"]) == 0
        assert "diagnostics" in capsys.readouterr().out

    def test_lint_strict_mode_accepted(self, capsys):
        assert main(["lint", "ijpeg", "--scale", "0.1", "--strict"]) == 0

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "dangling-target" in out and "dead-store" in out

    def test_lint_without_workload_is_usage_error(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_unknown_ignore_rule_is_usage_error(self, capsys):
        assert main(["lint", "compress", "--ignore", "no-such-rule"]) == 2

    def test_validate_pairs_profile_policy(self, capsys):
        assert main(["validate-pairs", "compress", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "pairs checked" in out
        assert "0 rejected" in out

    def test_validate_pairs_rejects_corrupt_table(self, capsys, tmp_path):
        import json

        path = tmp_path / "pairs.json"
        main(["pairs", "compress", "--scale", "0.1", "--save", str(path)])
        capsys.readouterr()
        table = json.loads(path.read_text())
        table["pairs"][0]["cqip_pc"] = 10_000_000  # corrupt one entry
        path.write_text(json.dumps(table))
        assert main([
            "validate-pairs", "compress", "--scale", "0.1",
            "--load", str(path),
        ]) == 1
        assert "rejected" in capsys.readouterr().out

    def test_figure_unknown_name(self, capsys):
        assert main(["figure", "figure99"]) == 2

    def test_figure_runs_tiny_scale(self, capsys):
        assert main(["figure", "figure2", "--scale", "0.1"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_profile_renders_phases_and_hotspots(self, capsys):
        assert main(["profile", "compress", "--scale", "0.1",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        for phase in ("trace_build", "column_build", "pair_selection",
                      "simulate", "commit_check"):
            assert phase in out
        assert "top functions by cumulative time" in out
        assert "commit check" in out

    def test_profile_json_payload(self, capsys):
        import json

        assert main(["profile", "compress", "--scale", "0.1", "--json",
                     "--no-cprofile"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["ok"] is True
        assert payload["sim_core"] == "columnar"
        assert set(payload["phases"]) == {
            "trace_build", "column_build", "pair_selection", "simulate",
            "commit_check",
        }
        assert payload["hotspots"] == []  # --no-cprofile
        assert all(payload["commit_check"].values())
        assert payload["insts_per_sec"] > 0
        assert payload["wakeup_heap"] is None  # ticking core: no heap
        assert payload["stall_reasons"] == {}

    def test_profile_legacy_core(self, capsys):
        import json

        assert main(["profile", "compress", "--scale", "0.1", "--json",
                     "--no-cprofile", "--core", "legacy",
                     "--vp", "perfect"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sim_core"] == "legacy"
        assert payload["ok"] is True

    def test_profile_event_core(self, capsys):
        import json

        assert main(["profile", "compress", "--scale", "0.1", "--json",
                     "--no-cprofile", "--core", "event"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sim_core"] == "event"
        assert payload["ok"] is True
        heap = payload["wakeup_heap"]
        assert heap["events_processed"] > 0
        assert heap["cycles_skipped"] >= 0
        assert set(heap["wakeups"]) == {
            "advance", "waiter", "park_poll", "sleeper",
        }
        assert payload["stall_reasons"]


class TestObservability:
    """trace export / metrics dump+diff / telemetry wiring."""

    def test_trace_without_workload_is_usage_error(self, capsys):
        assert main(["trace"]) == 2

    def test_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(["trace", "compress", "--scale", "0.1",
                     "--tus", "4", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "schema OK" in stdout
        chrome = json.loads(out.read_text())
        assert validate_chrome_trace(chrome) == []
        assert chrome["otherData"]["workload"] == "compress"

    def test_trace_smoke_writes_default_artifacts(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--smoke", "--scale", "0.1"]) == 0
        assert (tmp_path / "trace.json").exists()
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["schema_version"] == 1
        assert "repro_sim_cycles_total" in metrics["metrics"]

    def test_trace_telemetry_writes_discoverable_dir(
        self, capsys, tmp_path
    ):
        from repro.obs import find_telemetry, read_manifests

        tele = tmp_path / "runs" / "t"
        assert main(["trace", "compress", "--scale", "0.1",
                     "--tus", "4", "--telemetry", str(tele)]) == 0
        assert "wrote telemetry" in capsys.readouterr().out
        assert (tele / "trace.json").exists()
        assert (tele / "events.jsonl").exists()
        manifest = read_manifests(tele)["trace_compress.manifest"]
        assert manifest["config"]["workload"] == "compress"
        assert manifest["extra"]["cycles"] > 0
        assert find_telemetry(tmp_path) == [tele]

    def test_metrics_dump_telemetry(self, capsys, tmp_path):
        from repro.obs import find_telemetry, read_manifests

        tele = tmp_path / "tele"
        assert main(["metrics", "dump", "compress", "--scale", "0.1",
                     "--tus", "4", "--format", "json",
                     "--telemetry", str(tele)]) == 0
        assert (tele / "metrics.json").exists()
        manifest = read_manifests(tele)["metrics_compress.manifest"]
        assert manifest["extra"]["format"] == "json"
        assert find_telemetry(tmp_path) == [tele]

    def test_dashboard_snapshot_bundle(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        snap = tmp_path / "snap"
        assert main(["dashboard", "compress", "--scale", "0.1",
                     "--tus", "4", "--telemetry", str(tmp_path),
                     "--snapshot", str(snap)]) == 0
        assert "wrote snapshot bundle" in capsys.readouterr().out
        trace = json.loads((snap / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        assert "repro dashboard" in (snap / "index.html").read_text()

    def test_dashboard_bad_attach_is_usage_error(self, capsys, tmp_path):
        assert main(["dashboard", "--attach", str(tmp_path / "nope"),
                     "--snapshot", str(tmp_path / "s")]) == 2
        assert "dashboard:" in capsys.readouterr().err

    def test_metrics_dump_prometheus(self, capsys):
        assert main(["metrics", "dump", "compress", "--scale", "0.1",
                     "--tus", "4"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sim_cycles_total counter" in out
        assert 'workload="compress"' in out

    def test_metrics_diff_exit_codes(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["metrics", "dump", "compress", "--scale", "0.1",
                     "--tus", "4", "--format", "json",
                     "--out", str(a)]) == 0
        assert main(["metrics", "dump", "compress", "--scale", "0.1",
                     "--tus", "4", "--vp", "perfect", "--format", "json",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert main(["metrics", "diff", str(a), str(a)]) == 0
        assert "0 sample(s) changed" in capsys.readouterr().out
        assert main(["metrics", "diff", str(a), str(b)]) == 1
        assert "->" in capsys.readouterr().out

    def test_exp_telemetry_writes_manifests(self, capsys, tmp_path):
        from repro.experiments import framework
        from repro.obs import read_manifests

        tele = tmp_path / "tele"
        framework.clear_memos()
        try:
            assert main(["exp", "--fig", "figure3", "--scale", "0.1",
                         "--jobs", "1", "--telemetry", str(tele),
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        finally:
            framework.clear_memos()
        manifests = read_manifests(tele)
        assert "sweep.manifest" in manifests
        points = [m for stem, m in manifests.items()
                  if stem != "sweep.manifest"]
        assert points and all(m["ok"] for m in points)
