"""ProcessorConfig validation and helpers."""

import pytest

from repro.cmt import ProcessorConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_thread_units=0),
            dict(fetch_width=0),
            dict(issue_width=-1),
            dict(rob_size=0),
            dict(forward_latency=-1),
            dict(init_overhead=-2),
            dict(spawn_order_check="psychic"),
            dict(removal_occurrences=0),
            dict(value_predictor="tea-leaves"),
            dict(branch_predictor="coin"),
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            ProcessorConfig(**kw)

    def test_defaults_match_paper_section_4_1(self):
        config = ProcessorConfig()
        assert config.num_thread_units == 16
        assert config.fetch_width == 4
        assert config.issue_width == 4
        assert config.rob_size == 64
        assert config.branch_history_bits == 10
        assert config.l1_size_kb == 32
        assert config.l1_assoc == 2
        assert config.l1_hit_latency == 3
        assert config.l1_miss_latency == 8
        assert config.forward_latency == 3
        assert config.value_predictor_kb == 16


class TestHelpers:
    def test_with_replaces_fields(self):
        config = ProcessorConfig().with_(num_thread_units=4, init_overhead=8)
        assert config.num_thread_units == 4
        assert config.init_overhead == 8
        assert config.fetch_width == 4  # untouched

    def test_with_validates_too(self):
        with pytest.raises(ValueError):
            ProcessorConfig().with_(rob_size=0)

    def test_single_threaded_strips_dynamic_policies(self):
        config = ProcessorConfig(
            removal_cycles=50, min_thread_size=32, reassign=True
        ).single_threaded()
        assert config.num_thread_units == 1
        assert config.removal_cycles is None
        assert config.min_thread_size is None
        assert not config.reassign

    def test_config_is_hashable(self):
        assert hash(ProcessorConfig()) == hash(ProcessorConfig())
        assert ProcessorConfig() != ProcessorConfig(num_thread_units=4)
