"""Docstring-audit tests: the rules work and the tree is clean."""

import textwrap

from repro.analysis.docstrings import (
    DEFAULT_TARGETS,
    DOC_RULES,
    audit_docstrings,
)


def _audit_source(tmp_path, source):
    """Audit one synthetic module and return its rule ids."""
    (tmp_path / "mod.py").write_text(textwrap.dedent(source))
    issues = audit_docstrings(targets=["mod"], src_root=tmp_path)
    return [issue.rule for issue in issues]


class TestRules:
    def test_missing_docstrings_flagged(self, tmp_path):
        rules = _audit_source(
            tmp_path,
            '''
            def public(): pass

            class Thing:
                def method(self): pass
            ''',
        )
        # module + function + class + method all lack docstrings.
        assert rules == ["missing-docstring"] * 4

    def test_private_names_skipped(self, tmp_path):
        rules = _audit_source(
            tmp_path,
            '''
            """Module."""

            def _helper(): pass

            class _Private:
                def method(self): pass
            ''',
        )
        assert rules == []

    def test_args_and_returns_rules(self, tmp_path):
        rules = _audit_source(
            tmp_path,
            '''
            """Module."""

            def undocumented_io(alpha, beta):
                """Do things."""
                return alpha + beta

            def documented(alpha, beta):
                """Return the sum of ``alpha`` and ``beta``."""
                return alpha + beta
            ''',
        )
        assert sorted(rules) == ["args-undocumented", "returns-undocumented"]

    def test_property_getter_needs_no_returns(self, tmp_path):
        rules = _audit_source(
            tmp_path,
            '''
            """Module."""

            class Thing:
                """A thing."""

                @property
                def size(self):
                    """The current size."""
                    return 3
            ''',
        )
        assert rules == []

    def test_issue_format_and_severity(self, tmp_path):
        (tmp_path / "mod.py").write_text("def f(): pass\n")
        issues = audit_docstrings(targets=["mod"], src_root=tmp_path)
        assert {i.severity for i in issues} == {"warning"}
        assert all(i.rule in DOC_RULES for i in issues)
        assert "mod:" in issues[0].format()


class TestRepositoryIsClean:
    def test_audited_packages_have_no_warnings(self):
        issues = audit_docstrings(DEFAULT_TARGETS)
        warnings = [i.format() for i in issues if i.severity == "warning"]
        assert warnings == []

    def test_audited_packages_have_no_infos(self):
        # Stronger than CI's warn-only gate: the tree currently documents
        # args and returns everywhere, keep it that way.
        issues = audit_docstrings(DEFAULT_TARGETS)
        assert [i.format() for i in issues] == []
