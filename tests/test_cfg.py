"""Dynamic CFG construction tests."""

from repro.exec import run_program
from repro.isa import assemble
from repro.profiling import ControlFlowGraph


def _cfg(text):
    trace = run_program(assemble(text))
    return trace, ControlFlowGraph.from_trace(trace)


class TestBlockDiscovery:
    def test_straightline_program_is_one_block(self):
        trace, cfg = _cfg("li r1 1\naddi r1 r1 1\nhalt")
        assert len(cfg) == 1
        assert cfg.blocks[0].size == 3
        assert cfg.blocks[0].count == 1

    def test_loop_splits_blocks(self):
        trace, cfg = _cfg(
            "li r1 3\nloop: addi r1 r1 -1\nbnez r1 loop\nhalt"
        )
        heads = {blk.start_pc for blk in cfg.blocks}
        assert 1 in heads  # loop head is a leader
        assert 3 in heads  # fall-through after the branch
        loop_block = cfg.blocks[cfg.block_of_pc(1)]
        assert loop_block.count == 3

    def test_sequence_tiles_the_trace(self, loop_trace):
        cfg = ControlFlowGraph.from_trace(loop_trace)
        covered = 0
        for k, (bid, start) in enumerate(cfg.sequence):
            assert start == covered
            covered += cfg.blocks[bid].size if k < len(cfg.sequence) else 0
            # recompute: the next block must start exactly after this one
            covered = start + cfg.blocks[bid].size
        assert covered == len(loop_trace)

    def test_counts_match_sequence(self, loop_trace):
        cfg = ControlFlowGraph.from_trace(loop_trace)
        from collections import Counter

        seq_counts = Counter(bid for bid, _ in cfg.sequence)
        for blk in cfg.blocks:
            assert blk.count == seq_counts[blk.bid]

    def test_edges_weighted_by_transitions(self):
        trace, cfg = _cfg("li r1 3\nloop: addi r1 r1 -1\nbnez r1 loop\nhalt")
        loop_bid = cfg.block_of_pc(1)
        assert cfg.edges[(loop_bid, loop_bid)] == 2  # two back-to-back iterations

    def test_edge_weights_sum_to_transitions(self, loop_trace):
        cfg = ControlFlowGraph.from_trace(loop_trace)
        assert sum(cfg.edges.values()) == len(cfg.sequence) - 1

    def test_total_instructions(self, loop_trace):
        cfg = ControlFlowGraph.from_trace(loop_trace)
        assert cfg.total_instructions == len(loop_trace)
