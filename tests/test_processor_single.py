"""Single-threaded timing-model tests (the speed-up baseline)."""

import pytest

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.exec import run_program
from repro.isa import assemble
from repro.spawning import SpawnPairSet

BASE = ProcessorConfig()


def _single(trace, **overrides):
    config = BASE.single_threaded().with_(**overrides)
    return simulate(trace, SpawnPairSet([]), config)


class TestBounds:
    def test_fetch_width_bounds_ipc(self, loop_trace):
        stats = _single(loop_trace)
        assert stats.cycles >= len(loop_trace) / BASE.fetch_width
        assert stats.instructions == len(loop_trace)

    def test_dependence_chain_bounds_cycles(self, serial_trace):
        # every instruction in the chain depends on its predecessor, so
        # the run can never beat one instruction per cycle on the chain
        stats = _single(serial_trace)
        chained = sum(1 for d in serial_trace if d.srcs)
        assert stats.cycles >= chained

    def test_single_thread_commits_one_thread(self, loop_trace):
        stats = _single(loop_trace)
        assert stats.threads_committed == 1
        assert stats.spawns == 0
        assert stats.thread_sizes == [len(loop_trace)]

    def test_deterministic(self, loop_trace):
        assert _single(loop_trace).cycles == _single(loop_trace).cycles


class TestLatencyEffects:
    def test_higher_miss_latency_slows_execution(self):
        trace = run_program(
            assemble(
                "li r1 0\nli r3 200\nloop: load r2 r1 1000\naddi r1 r1 64\n"
                "blt r1 r3 loop\nhalt"
            )
        )
        fast = _single(trace, l1_miss_latency=8).cycles
        slow = _single(trace, l1_miss_latency=50).cycles
        assert slow > fast

    def test_fp_division_latency_visible(self):
        div = run_program(
            assemble("li r1 7\nfcvt r2 r1\nfdiv r3 r2 r2\nfdiv r3 r3 r2\nhalt")
        )
        add = run_program(
            assemble("li r1 7\nfcvt r2 r1\nfadd r3 r2 r2\nfadd r3 r3 r2\nhalt")
        )
        assert _single(div).cycles > _single(add).cycles

    def test_mispredict_penalty_slows_branchy_code(self):
        # data-dependent branch pattern the predictor cannot learn well
        trace = run_program(
            assemble(
                "li r1 100\nli r4 1\nloop: mul r4 r4 r4\naddi r4 r4 13\n"
                "andi r4 r4 255\nandi r2 r4 1\nbeqz r2 skip\naddi r3 r3 1\n"
                "skip: addi r1 r1 -1\nbnez r1 loop\nhalt"
            )
        )
        cheap = _single(trace, mispredict_penalty=0).cycles
        dear = _single(trace, mispredict_penalty=30).cycles
        assert dear > cheap

    def test_rob_limits_runahead(self):
        # a very long latency instruction followed by many independent ones:
        # with a tiny ROB, fetch must stall behind the divider
        text = "li r1 9\nfcvt r2 r1\nfdiv r3 r2 r2\n" + "addi r4 r4 1\n" * 100 + "halt"
        trace = run_program(assemble(text))
        small = _single(trace, rob_size=8).cycles
        large = _single(trace, rob_size=256).cycles
        assert small >= large

    def test_branch_predictor_stats_populated(self, loop_trace):
        stats = _single(loop_trace)
        assert stats.branch_predictions > 0
        assert 0.0 < stats.branch_hit_rate <= 1.0

    def test_empty_trace(self):
        trace = run_program(assemble("halt"))
        stats = _single(trace)
        assert stats.cycles >= 1
        assert stats.instructions == 1


class TestHelper:
    def test_single_thread_cycles_matches_simulate(self, loop_trace):
        assert single_thread_cycles(loop_trace, BASE) == _single(loop_trace).cycles
