"""Cross-cutting simulator invariants over the real workload suite."""

import pytest

from repro.cmt import ProcessorConfig, simulate, single_thread_cycles
from repro.spawning import ProfilePolicyConfig, heuristic_pairs, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)

CONFIGS = [
    ProcessorConfig(),
    ProcessorConfig(num_thread_units=4),
    ProcessorConfig(value_predictor="stride"),
    ProcessorConfig(removal_cycles=50, min_thread_size=32),
    ProcessorConfig(spawn_order_check="none"),
]


@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
@pytest.mark.parametrize("name", ["compress", "vortex", "m88ksim"])
class TestInvariants:
    def _run(self, small_traces, name, config_index):
        trace = small_traces[name]
        pairs = select_profile_pairs(trace, POLICY)
        return trace, simulate(trace, pairs, CONFIGS[config_index])

    def test_every_instruction_executed_exactly_once(
        self, small_traces, name, config_index
    ):
        trace, stats = self._run(small_traces, name, config_index)
        assert stats.instructions == len(trace)
        assert sum(stats.thread_sizes) == len(trace)

    def test_thread_count_consistency(self, small_traces, name, config_index):
        trace, stats = self._run(small_traces, name, config_index)
        assert stats.threads_committed == stats.spawns + 1

    def test_cycles_positive_and_bounded_below(
        self, small_traces, name, config_index
    ):
        trace, stats = self._run(small_traces, name, config_index)
        config = CONFIGS[config_index]
        lower = len(trace) / (
            config.num_thread_units * config.issue_width
        )
        assert stats.cycles >= lower

    def test_activity_within_unit_count(self, small_traces, name, config_index):
        trace, stats = self._run(small_traces, name, config_index)
        assert 0 < stats.avg_active_threads <= CONFIGS[config_index].num_thread_units


class TestDeterminism:
    def test_identical_runs_identical_stats(self, small_traces):
        trace = small_traces["vortex"]
        pairs = select_profile_pairs(trace, POLICY)
        a = simulate(trace, pairs, ProcessorConfig())
        b = simulate(trace, pairs, ProcessorConfig())
        assert a.cycles == b.cycles
        assert a.spawns == b.spawns
        assert a.thread_sizes == b.thread_sizes


class TestPolicyRelations:
    def test_multithreading_never_catastrophically_regresses(self, small_traces):
        """With perfect value prediction, speculative threading should not
        slow any suite member down by more than a small margin."""
        for name, trace in small_traces.items():
            base = single_thread_cycles(trace, ProcessorConfig())
            for pairs in (
                select_profile_pairs(trace, POLICY),
                heuristic_pairs(trace),
            ):
                stats = simulate(trace, pairs, ProcessorConfig())
                assert stats.cycles <= base * 1.15, name

    def test_profile_wins_on_the_regular_benchmark(self, small_traces):
        trace = small_traces["ijpeg"]
        base = single_thread_cycles(trace, ProcessorConfig())
        stats = simulate(trace, select_profile_pairs(trace, POLICY), ProcessorConfig())
        assert base / stats.cycles > 1.4
