"""Hardened experiment runner: retries, timeouts, checkpoint/resume."""

import json
import time

import pytest

from repro.errors import SimulationTimeout
from repro.experiments import (
    ResilientOutcome,
    SweepCheckpoint,
    resilient_sweep,
    run_resilient,
)


class TestRunResilient:
    def test_success_first_try(self):
        outcome = run_resilient(lambda: 41 + 1)
        assert outcome.ok
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.error is None

    def test_flaky_task_survives_via_retry(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        outcome = run_resilient(flaky, retries=2, backoff=0.001)
        assert outcome.ok
        assert outcome.value == "done"
        assert outcome.attempts == 3

    def test_permanent_failure_reported_not_raised(self):
        def broken():
            raise ValueError("always wrong")

        outcome = run_resilient(broken, retries=1, backoff=0.0)
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_type == "ValueError"
        assert "always wrong" in outcome.error

    def test_wall_clock_timeout(self):
        def slow():
            time.sleep(5)

        outcome = run_resilient(slow, timeout=0.05, retries=0)
        assert not outcome.ok
        assert outcome.error_type == "SimulationTimeout"

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_resilient(interrupted)

    def test_outcome_round_trip(self):
        outcome = ResilientOutcome(ok=False, attempts=3, error="x",
                                   error_type="RuntimeError")
        assert ResilientOutcome.from_dict(outcome.to_dict()) == outcome


class TestSweepCheckpoint:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("a@0", ResilientOutcome(ok=True, value={"cycles": 5}))
        assert "a@0" in ckpt

        reloaded = SweepCheckpoint(path)
        assert "a@0" in reloaded
        assert reloaded.get("a@0").value == {"cycles": 5}
        assert reloaded.get("missing") is None

    def test_discard(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("a@0", ResilientOutcome(ok=True))
        ckpt.discard("a@0")
        assert "a@0" not in SweepCheckpoint(path)

    def test_file_is_valid_json_after_every_record(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        for i in range(3):
            ckpt.record(f"run{i}", ResilientOutcome(ok=True, value=i))
            data = json.loads(path.read_text())
            assert len(data) == i + 1
        assert not path.with_suffix(".json.tmp").exists()


class TestResilientSweep:
    def test_all_tasks_run_and_checkpointed(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "ckpt.json")
        results = resilient_sweep(
            {"a": lambda: 1, "b": lambda: 2}, checkpoint=ckpt
        )
        assert results["a"].value == 1
        assert results["b"].value == 2
        assert len(ckpt) == 2

    def test_resume_skips_completed_runs(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("done", ResilientOutcome(ok=True, value="cached"))

        calls = []
        seen = []

        def progress(key, outcome, resumed):
            seen.append((key, resumed))

        results = resilient_sweep(
            {
                "done": lambda: calls.append("done") or "fresh",
                "todo": lambda: calls.append("todo") or "new",
            },
            checkpoint=SweepCheckpoint(path),
            progress=progress,
        )
        assert calls == ["todo"]  # "done" was resumed, not re-run
        assert results["done"].value == "cached"
        assert results["todo"].value == "new"
        assert ("done", True) in seen and ("todo", False) in seen

    def test_failed_task_does_not_stop_sweep(self):
        def broken():
            raise RuntimeError("boom")

        results = resilient_sweep(
            {"bad": broken, "good": lambda: "ok"}, retries=0, backoff=0.0
        )
        assert not results["bad"].ok
        assert results["good"].ok


class TestCorruptCheckpointRecovery:
    def test_corrupt_json_quarantined_and_empty_start(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"a@0": {"ok": true, "val')  # truncated write

        ckpt = SweepCheckpoint(path)
        assert len(ckpt) == 0
        assert ckpt.quarantined == tmp_path / "ckpt.json.corrupt"
        assert ckpt.quarantined.exists()
        assert not path.exists()
        # The store works normally after quarantine.
        ckpt.record("b@0", ResilientOutcome(ok=True, value=1))
        assert "b@0" in SweepCheckpoint(path)

    def test_non_object_root_quarantined(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")

        ckpt = SweepCheckpoint(path)
        assert len(ckpt) == 0
        assert ckpt.quarantined is not None

    def test_binary_garbage_quarantined(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b"\x00\xff\xfe garbage \x80")

        ckpt = SweepCheckpoint(path)
        assert len(ckpt) == 0
        assert ckpt.quarantined is not None

    def test_valid_checkpoint_not_quarantined(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path).record(
            "a@0", ResilientOutcome(ok=True, value=1)
        )
        ckpt = SweepCheckpoint(path)
        assert ckpt.quarantined is None
        assert "a@0" in ckpt


class TestBackoffJitter:
    def test_zero_jitter_is_bit_identical_exponential(self):
        from repro.experiments import backoff_delay

        for attempt in range(6):
            assert backoff_delay(0.05, attempt) == 0.05 * (2**attempt)
            assert backoff_delay(0.05, attempt, jitter=0.0,
                                 jitter_key="k") == 0.05 * (2**attempt)

    def test_jitter_is_deterministic_per_key_and_attempt(self):
        from repro.experiments import backoff_delay

        a = backoff_delay(0.05, 2, jitter=0.5, jitter_key="job-a")
        assert a == backoff_delay(0.05, 2, jitter=0.5, jitter_key="job-a")
        b = backoff_delay(0.05, 2, jitter=0.5, jitter_key="job-b")
        assert a != b  # different tasks desynchronise

    def test_jitter_stays_within_band(self):
        from repro.experiments import backoff_delay

        for key in ("a", "b", "c", "d", "e"):
            for attempt in range(5):
                base = 0.05 * (2**attempt)
                delay = backoff_delay(0.05, attempt, jitter=0.5,
                                      jitter_key=key)
                assert base * 0.5 <= delay <= base * 1.5

    def test_run_resilient_accepts_jitter(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RuntimeError("transient")
            return "done"

        outcome = run_resilient(flaky, retries=2, backoff=0.001,
                                jitter=0.5, jitter_key="flaky")
        assert outcome.ok and outcome.attempts == 2
