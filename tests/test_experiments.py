"""Experiment-framework and figure-driver tests (reduced scale)."""

import pytest

from repro.experiments.framework import (
    EXPERIMENT_CONFIG,
    FigureResult,
    baseline_cycles,
    pair_set_for,
    policy_names,
    run_policy,
    speedup,
    suite,
)
from repro.experiments import figures

SCALE = 0.12


class TestFramework:
    def test_suite_order_matches_paper(self):
        assert list(suite()) == [
            "go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
        ]

    def test_policies_registered(self):
        assert set(policy_names()) >= {
            "profile",
            "profile-independent",
            "profile-predictable",
            "heuristics",
        }

    def test_pair_sets_cached(self):
        a = pair_set_for("compress", "profile", SCALE)
        b = pair_set_for("compress", "profile", SCALE)
        assert a is b

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            pair_set_for("compress", "astrology", SCALE)

    def test_baseline_and_speedup_consistent(self):
        base = baseline_cycles("compress", EXPERIMENT_CONFIG, SCALE)
        stats = run_policy("compress", "profile", EXPERIMENT_CONFIG, SCALE)
        assert speedup("compress", "profile", EXPERIMENT_CONFIG, SCALE) == (
            pytest.approx(base / stats.cycles)
        )


class TestFigureResult:
    def test_render_contains_all_rows_and_summaries(self):
        result = FigureResult(
            figure="Figure X",
            title="demo",
            benchmarks=["a", "b"],
            series={"s1": [1.0, 2.0]},
            summary={"hmean": 1.33},
            paper_reference={"hmean": 7.2},
        )
        text = result.render()
        assert "Figure X" in text
        assert "a" in text and "b" in text
        assert "(paper: 7.2)" in text

    def test_render_without_reference(self):
        result = FigureResult(
            figure="F",
            title="t",
            benchmarks=["a"],
            series={"s": [1.0]},
            summary={"m": 1.0},
        )
        assert "paper" not in result.render()

    def test_render_grows_columns_for_long_names(self):
        long_bench = "extraordinarily_long_benchmark_name"
        long_series = "self_profiled_speedup"
        long_summary = "cross_profiled_hmean"
        result = FigureResult(
            figure="F",
            title="overflow",
            benchmarks=[long_bench, "li"],
            series={long_series: [1.2345, 1234567.89], "s": [1.0, 2.0]},
            summary={long_summary: 1.33},
        )
        lines = result.render().splitlines()
        header, row_a, row_b, summary_row = lines[1:5]

        # The name column fits the widest of header/benchmarks/summary
        # labels, so every row aligns on the same boundary.
        name_col = max(
            len("benchmark"), len(long_bench), len("li"), len(long_summary)
        )
        assert header.startswith(f"{'benchmark':>{name_col}} ")
        assert row_a.startswith(f"{long_bench:>{name_col}} ")
        assert row_b.startswith(f"{'li':>{name_col}} ")
        assert summary_row.startswith(f"{long_summary:>{name_col}} ")

        # A value column is as wide as its label and its widest value;
        # adjacent cells never fuse.
        value_col = max(len(long_series), len("1234567.89"))
        assert header.split()[1] == long_series
        assert row_a[name_col + 1:].startswith(f"{1.2345:>{value_col}.2f}")
        assert row_b[name_col + 1:].startswith(
            f"{1234567.89:>{value_col}.2f}"
        )
        assert " 1234567.89 " in f"{row_b} "


class TestFigureDrivers:
    """Run the cheap figure drivers end-to-end at a tiny scale."""

    def test_figure2_counts(self):
        result = figures.figure2(SCALE)
        assert result.benchmarks == list(suite())
        totals = result.series["total_pairs"]
        selected = result.series["selected_pairs"]
        assert all(t >= s >= 0 for t, s in zip(totals, selected))

    def test_figure3_speedups_positive(self):
        result = figures.figure3(SCALE)
        assert all(v > 0.3 for v in result.series["speedup"])
        assert result.summary["hmean"] > 0.5

    def test_figure4_activity_bounded(self):
        result = figures.figure4(SCALE)
        assert all(
            0 < v <= EXPERIMENT_CONFIG.num_thread_units
            for v in result.series["active_threads"]
        )

    def test_figure8_ratio_structure(self):
        result = figures.figure8(SCALE)
        assert len(result.series["profile_over_heuristics"]) == len(suite())

    def test_all_figures_registry_complete(self):
        expected = {
            "figure2", "figure3", "figure4", "figure5a", "figure5b",
            "figure6", "figure7a", "figure7b", "figure8", "figure9a",
            "figure9b", "figure10a", "figure10b", "figure11", "figure12",
            "heuristic_breakdown", "profile_input_sensitivity",
        }
        assert set(figures.ALL_FIGURES) == expected

    def test_profile_input_sensitivity_structure(self):
        result = figures.profile_input_sensitivity(SCALE)
        assert set(result.series) == {"self_profiled", "cross_profiled"}
        assert 0 < result.summary["transfer"] < 2.0

    def test_every_figure_driver_runs_at_tiny_scale(self):
        """Smoke-run all remaining drivers: structure only, no shape."""
        tiny = 0.08
        for name, fn in figures.ALL_FIGURES.items():
            result = fn(tiny)
            assert result.benchmarks, name
            for label, values in result.series.items():
                assert len(values) == len(result.benchmarks), (name, label)
            rendered = result.render()
            assert result.figure in rendered, name

    def test_heuristic_breakdown_series(self):
        result = figures.heuristic_breakdown(SCALE)
        assert set(result.series) == {
            "loop_iter", "loop_cont", "sub_cont", "combined",
        }
        assert all(v > 0 for v in result.series["combined"])
