"""Unit tests for opcode classification and instruction encoding."""

import pytest

from repro.isa.instructions import (
    BRANCH_OPS,
    FU_COUNT,
    FU_LATENCY,
    FuClass,
    Instruction,
    Opcode,
    fu_class,
    is_branch_op,
    is_control_op,
    latency_of,
)


class TestFuClassification:
    def test_alu_ops_use_simple_int(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.SHLI, Opcode.LI):
            assert fu_class(op) is FuClass.SIMPLE_INT

    def test_memory_ops_use_ldst(self):
        assert fu_class(Opcode.LOAD) is FuClass.LDST
        assert fu_class(Opcode.STORE) is FuClass.LDST

    def test_multiplier_classes(self):
        assert fu_class(Opcode.MUL) is FuClass.INT_MUL
        assert fu_class(Opcode.FMUL) is FuClass.FP_MUL

    def test_divider_shared_by_int_and_fp(self):
        assert fu_class(Opcode.DIV) is FuClass.FP_DIV
        assert fu_class(Opcode.REM) is FuClass.FP_DIV
        assert fu_class(Opcode.FDIV) is FuClass.FP_DIV

    def test_branches_execute_on_simple_int(self):
        for op in BRANCH_OPS:
            assert fu_class(op) is FuClass.SIMPLE_INT


class TestLatencies:
    """Latencies must match the paper's Section 4.1 table."""

    @pytest.mark.parametrize(
        "op,expected",
        [
            (Opcode.ADD, 1),
            (Opcode.LOAD, 1),  # plus cache access, added by the core model
            (Opcode.MUL, 4),
            (Opcode.FADD, 4),
            (Opcode.FMUL, 6),
            (Opcode.FDIV, 17),
        ],
    )
    def test_latency(self, op, expected):
        assert latency_of(op) == expected

    def test_fu_counts_match_paper(self):
        assert FU_COUNT[FuClass.SIMPLE_INT] == 2
        assert FU_COUNT[FuClass.LDST] == 2
        assert FU_COUNT[FuClass.INT_MUL] == 1
        assert FU_COUNT[FuClass.FP_SIMPLE] == 2
        assert FU_COUNT[FuClass.FP_MUL] == 1
        assert FU_COUNT[FuClass.FP_DIV] == 1

    def test_every_class_has_a_latency(self):
        for cls in FuClass:
            assert FU_LATENCY[cls] >= 1


class TestPredicates:
    def test_conditional_branches(self):
        assert is_branch_op(Opcode.BEQ)
        assert is_branch_op(Opcode.BNEZ)
        assert not is_branch_op(Opcode.JUMP)

    def test_control_ops_include_calls(self):
        for op in (Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.BLT):
            assert is_control_op(op)
        assert not is_control_op(Opcode.ADD)


class TestInstruction:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dst=64, srcs=(1, 2))
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dst=1, srcs=(1, 99))

    def test_properties(self):
        load = Instruction(Opcode.LOAD, dst=1, srcs=(2,), imm=4)
        assert load.is_mem and not load.is_branch and not load.is_control
        br = Instruction(Opcode.BEQ, srcs=(1, 2), target=0)
        assert br.is_branch and br.is_control

    def test_str_mentions_operands(self):
        text = str(Instruction(Opcode.ADDI, dst=3, srcs=(4,), imm=7))
        assert "addi" in text and "r3" in text and "r4" in text and "7" in text
