"""ProgramBuilder structured-construction tests (semantics via execution)."""

import pytest

from repro.exec import run_program
from repro.isa import Opcode, ProgramBuilder
from repro.isa.builder import ARG_REGS, RV_REG


def _final(trace, reg):
    return trace.value_of_register_at(reg, len(trace))


class TestRegisters:
    def test_named_registers_are_stable(self):
        b = ProgramBuilder()
        assert b.reg("x") == b.reg("x")
        assert b.reg("x") != b.reg("y")

    def test_temps_are_fresh(self):
        b = ProgramBuilder()
        assert b.temp() != b.temp()

    def test_pool_exhaustion_raises(self):
        b = ProgramBuilder()
        with pytest.raises(RuntimeError):
            for _ in range(100):
                b.temp()


class TestDataAllocation:
    def test_alloc_is_disjoint(self):
        b = ProgramBuilder()
        a1 = b.alloc(10)
        a2 = b.alloc(5)
        assert a2 >= a1 + 10

    def test_alloc_data_initialises_memory(self):
        b = ProgramBuilder()
        base = b.alloc_data([7, 8, 9])
        x = b.reg("x")
        b.li(x, base)
        b.load(x, x, 2)
        b.halt()
        trace = run_program(b.build())
        assert _final(trace, x) == 9


class TestControlFlow:
    def test_for_range_sums(self):
        b = ProgramBuilder()
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, 0)
        with b.for_range(i, 0, 10):
            b.add(acc, acc, i)
        b.halt()
        assert _final(run_program(b.build()), acc) == sum(range(10))

    def test_for_range_zero_trip(self):
        b = ProgramBuilder()
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, 5)
        with b.for_range(i, 3, 3):
            b.li(acc, 99)
        b.halt()
        assert _final(run_program(b.build()), acc) == 5

    def test_for_range_negative_step(self):
        b = ProgramBuilder()
        i, acc = b.reg("i"), b.reg("acc")
        b.li(acc, 0)
        with b.for_range(i, 5, 0, step=-1):
            b.addi(acc, acc, 1)
        b.halt()
        assert _final(run_program(b.build()), acc) == 5

    def test_nested_loops(self):
        b = ProgramBuilder()
        i, j, acc = b.reg("i"), b.reg("j"), b.reg("acc")
        b.li(acc, 0)
        with b.for_range(i, 0, 4):
            with b.for_range(j, 0, 3):
                b.addi(acc, acc, 1)
        b.halt()
        assert _final(run_program(b.build()), acc) == 12

    def test_while_loop(self):
        b = ProgramBuilder()
        x, lim = b.reg("x"), b.reg("lim")
        b.li(x, 0)
        b.li(lim, 7)
        with b.while_(Opcode.BLT, (x, lim)):
            b.addi(x, x, 2)
        b.halt()
        assert _final(run_program(b.build()), x) == 8

    def test_if_taken_and_not_taken(self):
        b = ProgramBuilder()
        x, y = b.reg("x"), b.reg("y")
        b.li(x, 1)
        b.li(y, 0)
        with b.if_(Opcode.BNEZ, (x,)):
            b.addi(y, y, 10)
        with b.if_(Opcode.BEQZ, (x,)):
            b.addi(y, y, 100)
        b.halt()
        assert _final(run_program(b.build()), y) == 10

    def test_if_else_branches(self):
        for selector, expected in ((0, 222), (1, 111)):
            b = ProgramBuilder()
            x, y = b.reg("x"), b.reg("y")
            b.li(x, selector)
            b.if_else(
                Opcode.BNEZ,
                (x,),
                lambda: b.li(y, 111),
                lambda: b.li(y, 222),
            )
            b.halt()
            assert _final(run_program(b.build()), y) == expected

    def test_loop_lowering_produces_backward_branch(self):
        b = ProgramBuilder()
        i = b.reg("i")
        with b.for_range(i, 0, 3):
            b.nop()
        b.halt()
        program = b.build()
        assert program.backward_branch_pcs()
        assert program.loop_heads()


class TestFunctions:
    def test_call_and_return_value(self):
        b = ProgramBuilder()
        x = b.reg("x")
        b.li(ARG_REGS[0], 20)
        b.call("inc")
        b.mov(x, RV_REG)
        b.halt()
        with b.function("inc"):
            b.addi(RV_REG, ARG_REGS[0], 1)
        trace = run_program(b.build())
        assert _final(trace, x) == 21

    def test_function_before_halt_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(RuntimeError):
            with b.function("f"):
                b.nop()

    def test_implicit_ret_appended(self):
        b = ProgramBuilder()
        b.call("f")
        b.halt()
        with b.function("f"):
            b.nop()
        program = b.build()
        assert program.instructions[-1].op is Opcode.RET


class TestLabelHygiene:
    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("spot")
        with pytest.raises(ValueError):
            b.label("spot")

    def test_undefined_label_rejected_at_build(self):
        b = ProgramBuilder()
        b.jump("nowhere")
        b.halt()
        with pytest.raises(ValueError):
            b.build()

    def test_build_validates_targets(self):
        b = ProgramBuilder()
        i = b.reg("i")
        with b.for_range(i, 0, 2):
            b.nop()
        b.halt()
        b.build().validate()  # must not raise
