"""Network-cache tests: digest-verified pull/push and degradation.

Each test runs a tiny in-thread fake coordinator on one end of a
``socketpair`` so the :class:`NetworkCache` under test speaks the real
frame protocol end to end.
"""

import json
import socket
import threading

from repro.cache import ArtifactCache
from repro.dist.cache_net import NetworkCache
from repro.dist.protocol import FrameChannel, blob_digest


class FakeCoordinator:
    """Serves ``cache_pull``/``cache_push`` from a real ArtifactCache."""

    def __init__(self, sock, cache, tamper=False):
        self.channel = FrameChannel(sock)
        self.cache = cache
        self.tamper = tamper
        self.pulls = []
        self.pushes = []
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            while True:
                header, blob = self.channel.recv()
                kind = header["kind"]
                if kind == "cache_pull":
                    self.pulls.append(header["cache_key"])
                    stored = self.cache.read_blob(
                        header["cache_kind"], header["cache_key"]
                    )
                    if stored is None:
                        self.channel.send(
                            {
                                "kind": "cache_blob",
                                "hit": False,
                                "seq": header["seq"],
                            }
                        )
                        continue
                    digest = blob_digest(stored)
                    if self.tamper:
                        stored = stored[:-1] + b"!"
                    self.channel.send(
                        {
                            "kind": "cache_blob",
                            "hit": True,
                            "digest": digest,
                            "seq": header["seq"],
                        },
                        stored,
                    )
                elif kind == "cache_push":
                    assert blob is not None
                    assert blob_digest(blob) == header["digest"]
                    self.pushes.append(header["cache_key"])
                    self.cache.write_blob(
                        header["cache_kind"], header["cache_key"], blob
                    )
                    self.channel.send(
                        {"kind": "cache_ok", "ok": True, "seq": header["seq"]}
                    )
                else:  # pragma: no cover - protocol misuse
                    raise AssertionError(f"unexpected frame {kind!r}")
        except Exception:
            pass

    def close(self):
        self.channel.close()
        self.thread.join(timeout=5.0)


def _rig(tmp_path, tamper=False):
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    shared = ArtifactCache(tmp_path / "shared")
    coordinator = FakeCoordinator(right, shared, tamper=tamper)
    local = NetworkCache(tmp_path / "local", FrameChannel(left))
    return local, shared, coordinator


def test_pull_hits_shared_cache_without_building(tmp_path):
    local, shared, coordinator = _rig(tmp_path)
    try:
        payload = {"cycles": 123}
        key = shared.key("point", runner="simulate", name="x")
        shared.store("point", key, payload)

        def must_not_build():
            raise AssertionError("built despite a shared-cache hit")

        value = local.get_or_create(
            "point", must_not_build, runner="simulate", name="x"
        )
        assert value == payload
        assert local.net_stats.pulls == 1
        assert local.net_stats.rejected == 0
        assert local.net_stats.bytes_pulled > 0
        # The blob landed locally: the next lookup never hits the wire.
        assert local.lookup("point", key) == payload
    finally:
        coordinator.close()


def test_miss_builds_locally_and_pushes(tmp_path):
    local, shared, coordinator = _rig(tmp_path)
    try:
        value = local.get_or_create(
            "point", lambda: {"cycles": 7}, runner="simulate", name="y"
        )
        assert value == {"cycles": 7}
        assert local.net_stats.probe_misses == 1
        assert local.net_stats.pushes == 1
        # The push made the blob visible to the whole fleet.
        key = shared.key("point", runner="simulate", name="y")
        assert json.loads(shared.read_blob("point", key)) == {"cycles": 7}
    finally:
        coordinator.close()


def test_tampered_blob_rejected_and_rebuilt(tmp_path):
    local, shared, coordinator = _rig(tmp_path, tamper=True)
    try:
        key = shared.key("point", runner="simulate", name="z")
        shared.store("point", key, {"cycles": 9})
        built = []

        def build():
            built.append(True)
            return {"cycles": 9}

        value = local.get_or_create(
            "point", build, runner="simulate", name="z"
        )
        assert value == {"cycles": 9}
        assert built == [True]  # the pull was discarded, built locally
        assert local.net_stats.rejected == 1
        assert local.net_stats.pulls == 0
    finally:
        coordinator.close()


def test_channel_failure_degrades_to_local_only(tmp_path):
    local, shared, coordinator = _rig(tmp_path)
    coordinator.close()  # the coordinator is gone mid-sweep
    value = local.get_or_create(
        "point", lambda: {"cycles": 1}, runner="simulate", name="w"
    )
    assert value == {"cycles": 1}
    # Degraded but alive: later calls stay local and never raise.
    again = local.get_or_create(
        "point", lambda: {"cycles": 1}, runner="simulate", name="w"
    )
    assert again == {"cycles": 1}
    assert local.stats.misses == 1  # second call was a local hit


def test_round_trip_push_then_pull_between_workers(tmp_path):
    first, shared, coordinator = _rig(tmp_path)
    try:
        first.get_or_create(
            "point", lambda: {"cycles": 42}, runner="simulate", name="rt"
        )
    finally:
        coordinator.close()
    # A second cold worker pulls what the first worker pushed.
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    coordinator2 = FakeCoordinator(right, shared)
    second = NetworkCache(tmp_path / "local2", FrameChannel(left))
    try:
        value = second.get_or_create(
            "point",
            lambda: (_ for _ in ()).throw(AssertionError("rebuilt")),
            runner="simulate",
            name="rt",
        )
        assert value == {"cycles": 42}
        assert second.net_stats.pulls == 1
    finally:
        coordinator2.close()
