"""Dataset-variant tests: inputs change, program text does not."""

import pytest

from repro.exec import run_program
from repro.workloads import build_workload, workload_names
from repro.workloads.generators import dataset_seed

SCALE = 0.12


class TestDatasetSeeds:
    def test_train_is_identity(self):
        assert dataset_seed(0x123, "train") == 0x123

    def test_datasets_differ(self):
        seeds = {dataset_seed(7, d) for d in ("train", "ref", "test", "x")}
        assert len(seeds) == 4

    def test_deterministic(self):
        assert dataset_seed(99, "ref") == dataset_seed(99, "ref")


@pytest.mark.parametrize("name", workload_names())
class TestProgramTextInvariance:
    def test_program_identical_across_datasets(self, name):
        train = build_workload(name, SCALE, "train")
        ref = build_workload(name, SCALE, "ref")
        assert [
            (i.op, i.dst, i.srcs, i.imm, i.target) for i in train
        ] == [(i.op, i.dst, i.srcs, i.imm, i.target) for i in ref]

    def test_data_differs_across_datasets(self, name):
        train = build_workload(name, SCALE, "train")
        ref = build_workload(name, SCALE, "ref")
        assert train.initial_memory != ref.initial_memory


class TestExecutionDiverges:
    def test_most_workloads_execute_differently(self):
        diverged = 0
        for name in workload_names():
            t = run_program(build_workload(name, SCALE, "train"))
            r = run_program(build_workload(name, SCALE, "ref"))
            if len(t) != len(r) or any(
                a.pc != b.pc for a, b in zip(t, r)
            ):
                diverged += 1
        # data-dependent control flow must actually respond to the input
        assert diverged >= 5
