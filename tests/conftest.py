"""Shared fixtures: small traces and pair sets reused across test modules."""

from __future__ import annotations

import pytest

from repro.exec import run_program
from repro.isa import ProgramBuilder
from repro.workloads import build_workload

#: Workload scale used by the test suite (keeps functional runs fast).
TEST_SCALE = 0.2


def pytest_addoption(parser):
    """Escape hatch for the golden-stats fixtures (test_golden_stats.py)."""
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current simulator "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def small_traces():
    """Reduced-scale traces for a representative workload subset."""
    return {
        name: run_program(build_workload(name, TEST_SCALE))
        for name in ("compress", "vortex", "ijpeg", "m88ksim")
    }


@pytest.fixture(scope="session")
def loop_trace():
    """A simple counted loop with an independent body — the canonical
    spawning-friendly program used by the processor tests."""
    b = ProgramBuilder("testloop")
    i = b.reg("i")
    acc = b.reg("acc")
    addr = b.reg("addr")
    val = b.reg("val")
    base = b.alloc_data(range(100, 400, 3))
    b.li(acc, 0)
    with b.for_range(i, 0, 64):
        b.li(addr, base)
        b.add(addr, addr, i)
        b.load(val, addr)
        b.mul(val, val, val)
        b.shri(val, val, 2)
        b.xori(val, val, 21)
        b.add(val, val, i)
        b.andi(val, val, 1023)
        b.store(val, addr)
    b.halt()
    return run_program(b.build())


@pytest.fixture(scope="session")
def serial_trace():
    """A loop whose iterations are chained through one register."""
    b = ProgramBuilder("serialloop")
    i = b.reg("i")
    x = b.reg("x")
    b.li(x, 1)
    with b.for_range(i, 0, 64):
        b.mul(x, x, x)
        b.addi(x, x, 7)
        b.andi(x, x, 0xFFFF)
        b.xori(x, x, 3)
        b.shri(x, x, 1)
        b.addi(x, x, 11)
        b.andi(x, x, 0xFFFF)
    b.halt()
    return run_program(b.build())
