"""Columnar/event vs legacy simulator cores: bit-identical statistics.

The columnar core (``ProcessorConfig.sim_core == "columnar"``) and the
event-driven batch-advance core (``sim_core == "event"``) are pure
performance rewrites of the hot loop; these tests pin the contract that
neither ever changes a single counter relative to the legacy dict-based
core — across value predictors, spawning policies, removal policies,
and under fault injection — and that the event core's clock jumps stay
observationally invisible at the watchdog boundaries.
"""

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.cmt.processor import ClusteredProcessor
from repro.errors import InvariantViolation, SimulationTimeout
from repro.faults import FaultInjector, FaultPlan, TUBlackoutFault
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    SpawnPairSet,
    heuristic_pairs,
    select_profile_pairs,
)

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)

CORES = ("legacy", "columnar", "event")


def _pairs(trace, policy="profile"):
    if policy == "heuristics":
        return heuristic_pairs(trace, HeuristicConfig())
    return select_profile_pairs(trace, POLICY)


def _all_cores(trace, pairs, injector_factory=None, **overrides):
    """Run every core on one point; returns their full stats dicts."""
    results = []
    for core in CORES:
        config = ProcessorConfig().with_(sim_core=core, **overrides)
        injector = injector_factory() if injector_factory else None
        results.append(simulate(trace, pairs, config, injector).to_dict())
    return results


def _assert_equal(results):
    legacy = results[0]
    for core, stats in zip(CORES[1:], results[1:]):
        assert stats == legacy, f"{core} diverged from legacy"


class TestConfig:
    def test_default_core_is_columnar(self):
        assert ProcessorConfig().sim_core == "columnar"

    def test_rejects_unknown_core(self):
        with pytest.raises(ValueError):
            ProcessorConfig(sim_core="vectorized")

    def test_with_preserves_core(self):
        config = ProcessorConfig(sim_core="legacy")
        assert config.with_(issue_width=2).sim_core == "legacy"

    def test_event_core_accepted(self):
        assert ProcessorConfig(sim_core="event").sim_core == "event"


class TestEquivalence:
    @pytest.mark.parametrize("vp", ["perfect", "stride", "fcm", "last", "none"])
    def test_loop_trace_all_predictors(self, loop_trace, vp):
        _assert_equal(
            _all_cores(loop_trace, _pairs(loop_trace), value_predictor=vp)
        )

    def test_serial_trace(self, serial_trace):
        _assert_equal(_all_cores(serial_trace, _pairs(serial_trace)))

    @pytest.mark.parametrize("name", ["compress", "vortex", "m88ksim"])
    @pytest.mark.parametrize("policy", ["profile", "heuristics"])
    def test_workloads_both_policies(self, small_traces, name, policy):
        trace = small_traces[name]
        _assert_equal(
            _all_cores(trace, _pairs(trace, policy), value_predictor="stride")
        )

    def test_single_threaded_baseline(self, loop_trace):
        _assert_equal(
            _all_cores(loop_trace, SpawnPairSet([]), num_thread_units=1)
        )

    def test_removal_policies(self, small_traces):
        trace = small_traces["ijpeg"]
        _assert_equal(
            _all_cores(
                trace,
                _pairs(trace),
                removal_cycles=24,
                removal_occurrences=2,
                min_thread_size=8,
            )
        )

    def test_collect_timeline(self, loop_trace):
        _assert_equal(
            _all_cores(loop_trace, _pairs(loop_trace), collect_timeline=True)
        )

    def test_under_fault_injection(self, small_traces):
        # All columnar-family runs book through the ring-buffer issue
        # tracker under fault injection too (the legacy core keeps the
        # dict tracker), and the event core degrades to poll parking;
        # the deterministic plan must still produce identical stats.
        trace = small_traces["compress"]
        plan = FaultPlan(
            seed=7,
            tu_blackout=TUBlackoutFault(rate=0.6, duration=120,
                                        slot_cycles=200),
        )
        _assert_equal(
            _all_cores(
                trace,
                _pairs(trace),
                injector_factory=lambda: FaultInjector(plan),
            )
        )

    def test_uniform_fault_plan(self, loop_trace):
        plan = FaultPlan.uniform(0.1, seed=3)
        _assert_equal(
            _all_cores(
                loop_trace,
                _pairs(loop_trace),
                injector_factory=lambda: FaultInjector(plan),
            )
        )


class TestEventEdgeCases:
    """Clock-jump edges: watchdog boundaries, blackouts in dead spans,
    and the empty-heap livelock check."""

    def test_budget_boundary_at_wakeup(self, loop_trace):
        # A cycle budget equal to the run's final cycle count sits at or
        # beyond every wakeup the event core jumps to, so all cores must
        # complete — a jump that lands exactly on the boundary is legal
        # (the watchdog fires strictly above the budget).
        pairs = _pairs(loop_trace)
        full = simulate(
            loop_trace, pairs, ProcessorConfig(sim_core="event")
        ).to_dict()
        _assert_equal(
            _all_cores(loop_trace, pairs, cycle_budget=full["cycles"])
        )

    def test_budget_exceeded_raises_in_every_core(self, loop_trace):
        pairs = _pairs(loop_trace)
        full = simulate(
            loop_trace, pairs, ProcessorConfig(sim_core="event")
        ).to_dict()
        budget = max(full["cycles"] // 2, 1)
        for core in CORES:
            with pytest.raises(SimulationTimeout):
                simulate(
                    loop_trace,
                    pairs,
                    ProcessorConfig(sim_core=core, cycle_budget=budget),
                )

    def test_blackout_inside_skipped_span(self, loop_trace):
        # Healthy event-core runs of this trace jump dead spans; a
        # blackout plan whose windows land inside those spans must be
        # honoured identically by all cores (the injector leg re-checks
        # darkness on every poll, so the event core never jumps over an
        # active blackout).
        pairs = _pairs(loop_trace)
        metrics_probe = ClusteredProcessor(
            loop_trace, pairs, ProcessorConfig(sim_core="event")
        )
        metrics_probe.run()
        assert metrics_probe.event_metrics["cycles_skipped"] > 0
        plan = FaultPlan(
            seed=11,
            tu_blackout=TUBlackoutFault(rate=1.0, duration=64,
                                        slot_cycles=128),
        )
        _assert_equal(
            _all_cores(
                loop_trace,
                pairs,
                injector_factory=lambda: FaultInjector(plan),
            )
        )

    def test_empty_heap_livelock_detected(self, loop_trace, monkeypatch):
        # If the wakeup heap drains while threads are unfinished (a wait
        # no completion can break), the event core must report livelock
        # immediately instead of spinning the zero-progress counter.
        proc = ClusteredProcessor(
            loop_trace, SpawnPairSet([]), ProcessorConfig(sim_core="event")
        )
        monkeypatch.setattr(proc, "_push", lambda thread: None)
        with pytest.raises(InvariantViolation, match="heap empty"):
            proc.run()

    def test_event_metrics_populated(self, loop_trace):
        proc = ClusteredProcessor(
            loop_trace, _pairs(loop_trace), ProcessorConfig(sim_core="event")
        )
        proc.run()
        metrics = proc.event_metrics
        assert metrics["sim_core"] == "event"
        assert metrics["events_processed"] > 0
        assert set(metrics["wakeups"]) == {
            "advance", "waiter", "park_poll", "sleeper"
        }
        assert metrics["replayed_polls"] >= 0
        # The ticking cores leave no event metrics behind.
        ticking = ClusteredProcessor(
            loop_trace, _pairs(loop_trace), ProcessorConfig(sim_core="columnar")
        )
        ticking.run()
        assert ticking.event_metrics is None
