"""Columnar vs legacy simulator core: bit-identical statistics.

The columnar core (``ProcessorConfig.sim_core == "columnar"``) is a
pure performance rewrite of the hot loop; these tests pin the contract
that it never changes a single counter relative to the legacy
dict-based core — across value predictors, spawning policies, removal
policies, and under fault injection.
"""

import pytest

from repro.cmt import ProcessorConfig, simulate
from repro.faults import FaultInjector, FaultPlan, TUBlackoutFault
from repro.spawning import (
    HeuristicConfig,
    ProfilePolicyConfig,
    SpawnPairSet,
    heuristic_pairs,
    select_profile_pairs,
)

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


def _pairs(trace, policy="profile"):
    if policy == "heuristics":
        return heuristic_pairs(trace, HeuristicConfig())
    return select_profile_pairs(trace, POLICY)


def _both(trace, pairs, injector_factory=None, **overrides):
    """Run both cores on one point; returns their full stats dicts."""
    results = []
    for core in ("legacy", "columnar"):
        config = ProcessorConfig().with_(sim_core=core, **overrides)
        injector = injector_factory() if injector_factory else None
        results.append(simulate(trace, pairs, config, injector).to_dict())
    return results


class TestConfig:
    def test_default_core_is_columnar(self):
        assert ProcessorConfig().sim_core == "columnar"

    def test_rejects_unknown_core(self):
        with pytest.raises(ValueError):
            ProcessorConfig(sim_core="vectorized")

    def test_with_preserves_core(self):
        config = ProcessorConfig(sim_core="legacy")
        assert config.with_(issue_width=2).sim_core == "legacy"


class TestEquivalence:
    @pytest.mark.parametrize("vp", ["perfect", "stride", "fcm", "last", "none"])
    def test_loop_trace_all_predictors(self, loop_trace, vp):
        legacy, columnar = _both(
            loop_trace, _pairs(loop_trace), value_predictor=vp
        )
        assert legacy == columnar

    def test_serial_trace(self, serial_trace):
        legacy, columnar = _both(serial_trace, _pairs(serial_trace))
        assert legacy == columnar

    @pytest.mark.parametrize("name", ["compress", "vortex", "m88ksim"])
    @pytest.mark.parametrize("policy", ["profile", "heuristics"])
    def test_workloads_both_policies(self, small_traces, name, policy):
        trace = small_traces[name]
        legacy, columnar = _both(
            trace, _pairs(trace, policy), value_predictor="stride"
        )
        assert legacy == columnar

    def test_single_threaded_baseline(self, loop_trace):
        legacy, columnar = _both(
            loop_trace, SpawnPairSet([]), num_thread_units=1
        )
        assert legacy == columnar

    def test_removal_policies(self, small_traces):
        trace = small_traces["ijpeg"]
        legacy, columnar = _both(
            trace,
            _pairs(trace),
            removal_cycles=24,
            removal_occurrences=2,
            min_thread_size=8,
        )
        assert legacy == columnar

    def test_collect_timeline(self, loop_trace):
        legacy, columnar = _both(
            loop_trace, _pairs(loop_trace), collect_timeline=True
        )
        assert legacy == columnar

    def test_under_fault_injection(self, small_traces):
        # The columnar core falls back to dict-based issue booking when
        # an injector is attached (booking floors may regress); the
        # deterministic plan must still produce identical stats.
        trace = small_traces["compress"]
        plan = FaultPlan(
            seed=7,
            tu_blackout=TUBlackoutFault(rate=0.6, duration=120,
                                        slot_cycles=200),
        )
        legacy, columnar = _both(
            trace,
            _pairs(trace),
            injector_factory=lambda: FaultInjector(plan),
        )
        assert legacy == columnar

    def test_uniform_fault_plan(self, loop_trace):
        plan = FaultPlan.uniform(0.1, seed=3)
        legacy, columnar = _both(
            loop_trace,
            _pairs(loop_trace),
            injector_factory=lambda: FaultInjector(plan),
        )
        assert legacy == columnar
