"""Per-thread timeline collection tests."""

from repro.cmt import ProcessorConfig, simulate
from repro.spawning import ProfilePolicyConfig, select_profile_pairs

POLICY = ProfilePolicyConfig(coverage=0.99, max_distance=4096)


class TestTimeline:
    def test_disabled_by_default(self, small_traces):
        trace = small_traces["vortex"]
        stats = simulate(trace, select_profile_pairs(trace, POLICY), ProcessorConfig())
        assert stats.timeline == []

    def test_records_every_committed_thread(self, small_traces):
        trace = small_traces["vortex"]
        stats = simulate(
            trace,
            select_profile_pairs(trace, POLICY),
            ProcessorConfig(collect_timeline=True),
        )
        assert len(stats.timeline) == stats.threads_committed
        assert sum(rec.size for rec in stats.timeline) == len(trace)

    def test_records_are_causally_ordered(self, small_traces):
        trace = small_traces["m88ksim"]
        stats = simulate(
            trace,
            select_profile_pairs(trace, POLICY),
            ProcessorConfig(collect_timeline=True),
        )
        commits = [rec.commit_cycle for rec in stats.timeline]
        starts = [rec.start_pos for rec in stats.timeline]
        assert commits == sorted(commits)  # program-order commit
        assert starts == sorted(starts)  # records come out in program order
        for rec in stats.timeline:
            assert rec.start_cycle <= rec.finish_cycle <= rec.commit_cycle
            assert 0 <= rec.tu < 16

    def test_root_thread_has_no_pair(self, small_traces):
        trace = small_traces["compress"]
        stats = simulate(
            trace,
            select_profile_pairs(trace, POLICY),
            ProcessorConfig(collect_timeline=True),
        )
        assert stats.timeline[0].pair is None
        assert stats.timeline[0].start_pos == 0

    def test_livein_accounting_consistent(self, small_traces):
        trace = small_traces["vortex"]
        stats = simulate(
            trace,
            select_profile_pairs(trace, POLICY),
            ProcessorConfig(collect_timeline=True, value_predictor="stride"),
        )
        for rec in stats.timeline:
            assert rec.livein_hits >= 0 and rec.livein_misses >= 0
            if rec.pair is None:
                assert rec.livein_hits == rec.livein_misses == 0
