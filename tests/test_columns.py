"""Columnar trace view: construction, equivalence, pickling, caching."""

import pickle

import pytest

from repro.cache import ArtifactCache
from repro.exec.columns import (
    F_BRANCH,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    F_UNCOND,
    TraceColumns,
)
from repro.isa.instructions import FU_CLASSES, Opcode, fu_class, latency_of


class TestBuild:
    def test_length_matches_trace(self, loop_trace):
        cols = TraceColumns.build(loop_trace)
        assert len(cols) == len(loop_trace)

    def test_columns_mirror_dyninst_fields(self, loop_trace):
        cols = TraceColumns.build(loop_trace)
        reg_deps = loop_trace.register_deps
        mem_deps = loop_trace.memory_deps
        for pos, inst in enumerate(loop_trace):
            assert cols.pc[pos] == inst.pc
            assert FU_CLASSES[cols.fu[pos]] is fu_class(inst.op)
            assert cols.lat[pos] == latency_of(inst.op)
            flags = cols.flags[pos]
            assert bool(flags & F_BRANCH) == (inst.taken is not None)
            if inst.taken is not None:
                assert bool(flags & F_TAKEN) == inst.taken
            assert bool(flags & F_LOAD) == inst.is_load
            assert bool(flags & F_STORE) == inst.is_store
            uncond = inst.taken is None and inst.op in (
                Opcode.JUMP, Opcode.CALL, Opcode.RET,
            )
            assert bool(flags & F_UNCOND) == uncond
            if inst.addr is None:
                assert cols.addr[pos] == -1
            else:
                assert cols.addr[pos] == inst.addr
            assert cols.mem_dep[pos] == mem_deps[pos]
            # dep_pairs keeps only resolved producers, paired with the
            # register each produced.
            expected = tuple(
                (producer, inst.srcs[i])
                for i, producer in enumerate(reg_deps[pos])
                if producer >= 0
            )
            assert cols.dep_pairs[pos] == expected

    def test_scan_reads_keep_unresolved_producers(self, loop_trace):
        cols = TraceColumns.build(loop_trace)
        reg_deps = loop_trace.register_deps
        for pos, inst in enumerate(loop_trace):
            expected = tuple(
                (reg, reg_deps[pos][i])
                for i, reg in enumerate(inst.srcs)
                if reg != 0
            )
            assert cols.scan_reads[pos] == expected

    def test_dst_columns(self, loop_trace):
        cols = TraceColumns.build(loop_trace)
        for pos, inst in enumerate(loop_trace):
            if inst.dst is not None and inst.dst != 0:
                assert cols.dst_nz[pos] == inst.dst
                assert cols.dst_value[pos] == inst.dst_value
            else:
                assert cols.dst_nz[pos] == -1


class TestTraceIntegration:
    def test_columns_property_memoizes(self, loop_trace):
        cols = loop_trace.columns
        assert loop_trace.columns is cols
        assert len(cols) == len(loop_trace)

    def test_attach_columns_rejects_length_mismatch(self, loop_trace, serial_trace):
        other = TraceColumns.build(serial_trace)
        assert len(other) != len(loop_trace)
        with pytest.raises(ValueError):
            loop_trace.attach_columns(other)

    def test_attach_columns_installs_view(self, loop_trace):
        rebuilt = TraceColumns.build(loop_trace)
        loop_trace.attach_columns(rebuilt)
        assert loop_trace.columns is rebuilt


class TestSerialization:
    def test_pickle_round_trip_is_equal(self, loop_trace):
        cols = loop_trace.columns
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols
        assert len(clone) == len(cols)

    def test_equality_detects_divergence(self, loop_trace, serial_trace):
        assert loop_trace.columns != serial_trace.columns

    def test_columns_cache_kind_round_trip(self, loop_trace, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        built = cache.get_or_create(
            "columns", lambda: loop_trace.columns, workload="testloop"
        )
        assert built == loop_trace.columns
        # A fresh cache instance must deserialise an equal object.
        fresh = ArtifactCache(tmp_path / "cache")
        loaded = fresh.get_or_create(
            "columns",
            lambda: pytest.fail("expected a cache hit"),
            workload="testloop",
        )
        assert loaded == loop_trace.columns
        assert fresh.stats.disk_hits == 1


class TestFrameworkCacheWiring:
    def test_trace_for_attaches_cached_columns(self, tmp_path):
        from repro.experiments import framework

        cache = ArtifactCache(tmp_path / "cache")
        with framework.use_cache(cache):
            trace = framework.trace_for("compress", 0.1)
            assert trace._columns is not None
        framework.clear_memos()
        # Second process-like pass: trace and columns come off disk.
        fresh = ArtifactCache(tmp_path / "cache")
        with framework.use_cache(fresh):
            warm = framework.trace_for("compress", 0.1)
            assert warm._columns is not None
        framework.clear_memos()
        assert fresh.stats.misses == 0
        assert fresh.stats.hit_rate == 1.0
        assert warm.columns == trace.columns
