"""Workload-suite tests: every benchmark builds, runs and is deterministic."""

import pytest

from repro.exec import run_program
from repro.isa.instructions import Opcode
from repro.workloads import SPECINT95, build_workload, load_trace, workload_names

SCALE = 0.15


class TestRegistry:
    def test_suite_has_the_papers_eight_benchmarks(self):
        assert workload_names() == [
            "go",
            "m88ksim",
            "gcc",
            "compress",
            "li",
            "ijpeg",
            "perl",
            "vortex",
        ]

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build_workload("doom")

    def test_specs_carry_descriptions(self):
        for spec in SPECINT95.values():
            assert spec.description


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        program = build_workload(name, SCALE)
        program.validate()
        assert program.name == name

    def test_halts_and_is_nontrivial(self, name):
        trace = run_program(build_workload(name, SCALE))
        assert trace[-1].op is Opcode.HALT
        assert len(trace) > 1000

    def test_deterministic(self, name):
        t1 = run_program(build_workload(name, SCALE))
        t2 = run_program(build_workload(name, SCALE))
        assert len(t1) == len(t2)
        assert [d.pc for d in t1[:200]] == [d.pc for d in t2[:200]]

    def test_scale_grows_the_trace(self, name):
        small = run_program(build_workload(name, 0.1))
        large = run_program(build_workload(name, 0.3))
        assert len(large) > len(small)

    def test_has_loops_and_branches(self, name):
        trace = run_program(build_workload(name, SCALE))
        assert trace.program.loop_heads(), "workloads must contain loops"
        assert any(d.taken is not None for d in trace)


class TestCharacter:
    """Each analogue must keep its namesake's distinguishing features."""

    def test_call_heavy_workloads(self):
        for name in ("li", "vortex", "gcc", "go"):
            trace = load_trace(name, SCALE)
            assert any(d.op is Opcode.CALL for d in trace), name

    def test_ijpeg_uses_floating_point(self):
        trace = load_trace("ijpeg", SCALE)
        assert any(
            d.op in (Opcode.FADD, Opcode.FMUL, Opcode.FCVT) for d in trace
        )

    def test_compress_is_loop_dominated(self):
        trace = load_trace("compress", SCALE)
        heads = trace.program.loop_heads()
        hot = max(heads, key=lambda pc: len(trace.positions_of(pc)))
        # the dominant loop accounts for the overwhelming majority of work
        assert len(trace.positions_of(hot)) > len(trace) / 60

    def test_interpreters_touch_guest_state(self):
        for name in ("m88ksim", "perl"):
            trace = load_trace(name, SCALE)
            loads = sum(1 for d in trace if d.op is Opcode.LOAD)
            stores = sum(1 for d in trace if d.op is Opcode.STORE)
            assert loads > 100 and stores > 50, name

    def test_load_trace_caches(self):
        assert load_trace("compress", SCALE) is load_trace("compress", SCALE)
