#!/usr/bin/env python
"""Check the repository's Markdown links.

Walks the given Markdown files (default: ``docs/*.md`` plus the
top-level ``*.md``), extracts every ``[text](target)`` link, and fails
when a *local* target does not exist relative to the file that links to
it.  ``http(s)``/``mailto`` links are not fetched — only noted — so the
check is fast and deterministic for CI:

    python scripts/check_links.py            # default file set
    python scripts/check_links.py docs/*.md  # explicit set
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing parenthesis.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _targets(path: Path) -> List[str]:
    text = path.read_text()
    # Strip fenced code blocks: their parentheses are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return _LINK.findall(text)


def check_links(paths: Iterable[Path]) -> Tuple[int, List[str]]:
    """Check every file; returns (links checked, broken-link messages)."""
    checked = 0
    broken: List[str] = []
    for path in paths:
        for target in _targets(path):
            checked += 1
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            local = target.split("#", 1)[0]
            if not local:
                continue
            resolved = (path.parent / local).resolve()
            if not resolved.exists():
                broken.append(
                    f"{path.relative_to(REPO)}: broken link -> {target}"
                )
    return checked, broken


def main(argv: List[str]) -> int:
    if argv:
        paths = [Path(arg).resolve() for arg in argv]
    else:
        paths = sorted((REPO / "docs").glob("*.md")) + sorted(
            REPO.glob("*.md")
        )
    checked, broken = check_links(paths)
    for message in broken:
        print(message, file=sys.stderr)
    print(f"checked {checked} links in {len(paths)} files, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
