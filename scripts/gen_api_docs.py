#!/usr/bin/env python
"""Generate docs/api.md: the public API index of the repro package.

AST-based (nothing is imported), so it works on any checkout and its
output is a pure function of the source tree — run it after changing a
public signature or docstring:

    python scripts/gen_api_docs.py          # rewrites docs/api.md
    python scripts/gen_api_docs.py --check  # exit 1 if api.md is stale

For every module it lists the public classes (with their public
methods) and functions, each with its signature and the first line of
its docstring.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List, Optional

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
OUT = REPO / "docs" / "api.md"

HEADER = """# API index

Public modules, classes and functions of the `repro` package, with
each symbol's signature and one-line summary.  Generated — do not edit
by hand; regenerate with:

```bash
python scripts/gen_api_docs.py
```
"""


def _public(name: str) -> bool:
    return not name.startswith("_")


def _signature(node: ast.AST) -> str:
    """Render a def's parameter list (defaults elided to ``=...``)."""
    args = node.args
    parts: List[str] = []
    positional = args.posonlyargs + args.args
    defaults_from = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        token = arg.arg
        if index >= defaults_from:
            token += "=..."
        parts.append(token)
    if args.vararg:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        token = arg.arg
        if default is not None:
            token += "=..."
        parts.append(token)
    if args.kwarg:
        parts.append(f"**{args.kwarg.arg}")
    return ", ".join(p for p in parts if p not in ("self", "cls"))


def _summary(node: ast.AST) -> str:
    doc = ast.get_docstring(node, clean=True)
    return doc.splitlines()[0].strip() if doc else ""


def _module_lines(module: str, path: Path) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    lines = [f"## `{module}`", ""]
    summary = _summary(tree)
    if summary:
        lines += [summary, ""]
    emitted = False
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _public(node.name):
            emitted = True
            lines.append(f"- **class `{node.name}`** — {_summary(node)}")
            for member in node.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _public(member.name)
                ):
                    lines.append(
                        f"  - `{member.name}({_signature(member)})` — "
                        f"{_summary(member)}"
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name):
                emitted = True
                lines.append(
                    f"- `{node.name}({_signature(node)})` — {_summary(node)}"
                )
    if not emitted:
        return []
    lines.append("")
    return lines


def render() -> str:
    """Build the whole api.md text from the source tree."""
    sections: List[str] = [HEADER]
    for path in sorted((SRC / "repro").rglob("*.py")):
        parts = path.relative_to(SRC).with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if any(p.startswith("_") for p in parts[1:]):
            continue
        module = ".".join(parts)
        lines = _module_lines(module, path)
        if lines:
            sections.append("\n".join(lines))
    return "\n".join(sections).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify docs/api.md is up to date (exit 1 if "
                        "stale) instead of writing it")
    args = parser.parse_args(argv)
    text = render()
    if args.check:
        current = OUT.read_text() if OUT.exists() else ""
        if current != text:
            print("docs/api.md is stale; run scripts/gen_api_docs.py",
                  file=sys.stderr)
            return 1
        print("docs/api.md is up to date")
        return 0
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(text)
    print(f"wrote {OUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
