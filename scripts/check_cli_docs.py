#!/usr/bin/env python
"""Check documented CLI invocations against the real argparse tree.

Walks the Markdown files (default: ``docs/*.md`` plus the top-level
``*.md``), extracts every ``repro <command> ...`` / ``python -m repro
<command> ...`` invocation — fenced code blocks *and* inline code spans
— and validates it against :func:`repro.cli.make_parser`:

- the subcommand must exist (nested subcommands like ``metrics dump``
  are followed one level down);
- every ``--flag`` (with any ``=value`` stripped) must be a real option
  of that subcommand.

This is the documentation analogue of the api-docs staleness check: a
renamed or removed flag fails CI instead of silently rotting in the
docs.  Run it as::

    PYTHONPATH=src python scripts/check_cli_docs.py            # default set
    PYTHONPATH=src python scripts/check_cli_docs.py docs/*.md  # explicit set
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import make_parser  # noqa: E402

#: One documented invocation: ``repro <command> <rest of line>``.
_INVOCATION = re.compile(
    r"(?:python -m repro|(?<![-\w.])repro)\s+([a-z][a-z0-9-]*)([^\n`]*)"
)
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def _subparsers(
    parser: argparse.ArgumentParser,
) -> Dict[str, argparse.ArgumentParser]:
    """Return the parser's subcommand name -> subparser mapping."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _options(parser: argparse.ArgumentParser) -> Set[str]:
    """Return every ``--long-option`` string the parser accepts."""
    flags: Set[str] = set()
    for action in parser._actions:
        flags.update(s for s in action.option_strings if s.startswith("--"))
    return flags


def build_command_table() -> Dict[str, Set[str]]:
    """Map each CLI command path to its accepted ``--flags``.

    Nested subcommands (``metrics dump``, ``metrics diff``) appear both
    under their full path and contribute nothing to the parent's entry.

    Returns:
        ``{"exp": {"--fig", ...}, "metrics dump": {...}, ...}``.
    """
    table: Dict[str, Set[str]] = {}
    for name, sub in _subparsers(make_parser()).items():
        nested = _subparsers(sub)
        table[name] = _options(sub)
        for nested_name, nested_sub in nested.items():
            table[f"{name} {nested_name}"] = _options(nested_sub) | _options(
                sub
            )
    return table


def _invocations(text: str) -> List[Tuple[str, str]]:
    """Extract ``(command word, rest of line)`` pairs from Markdown."""
    return [
        (match.group(1), match.group(2))
        for match in _INVOCATION.finditer(text)
    ]


def check_file(
    path: Path, table: Dict[str, Set[str]]
) -> Tuple[int, List[str]]:
    """Validate one file's invocations; returns (checked, problems)."""
    checked = 0
    problems: List[str] = []
    rel = path.relative_to(REPO)
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        for command, rest in _invocations(line):
            checked += 1
            if command not in table:
                problems.append(
                    f"{rel}:{line_no}: unknown command 'repro {command}'"
                )
                continue
            target = command
            nested = rest.strip().split(" ", 1)[0] if rest.strip() else ""
            if nested and f"{command} {nested}" in table:
                target = f"{command} {nested}"
            known = table[target]
            for flag in _FLAG.findall(rest):
                checked += 1
                if flag not in known:
                    problems.append(
                        f"{rel}:{line_no}: 'repro {target}' has no "
                        f"option {flag}"
                    )
    return checked, problems


def main(argv: List[str]) -> int:
    """Run the check over ``argv`` paths (or the default doc set)."""
    if argv:
        paths: Iterable[Path] = [Path(arg).resolve() for arg in argv]
    else:
        # CHANGES.md is a PR log and ROADMAP.md sketches future (not yet
        # existing) commands — neither documents the current CLI.
        skip = {"CHANGES.md", "ROADMAP.md"}
        paths = sorted((REPO / "docs").glob("*.md")) + sorted(
            p for p in REPO.glob("*.md") if p.name not in skip
        )
    table = build_command_table()
    checked = 0
    problems: List[str] = []
    file_count = 0
    for path in paths:
        file_count += 1
        file_checked, file_problems = check_file(path, table)
        checked += file_checked
        problems.extend(file_problems)
    for message in problems:
        print(message, file=sys.stderr)
    print(
        f"checked {checked} CLI references in {file_count} files, "
        f"{len(problems)} stale"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
